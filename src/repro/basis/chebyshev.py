"""Shifted-Chebyshev polynomial basis (first kind).

Shifted Chebyshev polynomials ``Ts_n(t) = T_n(2t/T - 1)`` on ``[0, T]``
are orthogonal under the weight ``w(t) = 1/sqrt(1 - (2t/T - 1)^2)``:
``<Ts_i, Ts_j>_w = (T/2) c_i delta_ij`` with ``c_0 = pi`` and
``c_i = pi/2`` otherwise.

The operational matrix of integration follows from the antiderivative
identities ``integral T_0 = T_1``, ``integral T_1 = (T_0 + T_2)/4`` and
``integral T_n = (T_{n+1}/(n+1) - T_{n-1}/(n-1))/2`` for ``n >= 2``,
with the integration-from-zero constant re-expanded in ``T_0`` using
``T_k(-1) = (-1)^k``.

Like all polynomial bases here, no differentiation operational matrix
is exposed (see :mod:`repro.basis.legendre`); use the integral-form
solver.  Fractional integration uses the same Gauss-Jacobi scheme as
the Legendre basis, with Gauss-Chebyshev projection.
"""

from __future__ import annotations


import numpy as np
from scipy.special import gamma as gamma_fn
from scipy.special import roots_jacobi

from .._validation import check_fractional_order, check_positive_float, check_positive_int
from .base import BasisSet, QuadratureProjectionMixin, cached_operator

__all__ = ["ChebyshevBasis"]


class ChebyshevBasis(QuadratureProjectionMixin, BasisSet):
    """Shifted Chebyshev polynomials ``Ts_0 .. Ts_{m-1}`` on ``[0, t_end]``.

    Examples
    --------
    >>> import numpy as np
    >>> basis = ChebyshevBasis(2.0, 4)
    >>> np.round(basis.project(lambda t: t), 12)   # t = 1 + Ts_1(t) on [0,2]
    array([1., 1., 0., 0.])
    """

    def __init__(self, t_end: float, m: int, *, n_quad: int | None = None) -> None:
        self._t_end = check_positive_float(t_end, "t_end")
        self._m = check_positive_int(m, "m")
        self._n_quad = n_quad if n_quad is not None else max(64, 2 * m)
        # Gauss-Chebyshev nodes: x_q = cos((2q+1) pi / (2 nq)), weight pi/nq
        q = np.arange(self._n_quad)
        self._quad_x = np.cos((2.0 * q + 1.0) * np.pi / (2.0 * self._n_quad))
        self._quad_t = 0.5 * self._t_end * (self._quad_x + 1.0)
        self._quad_w = np.full(self._n_quad, np.pi / self._n_quad)
        self._norms = np.full(self._m, np.pi / 2.0)
        self._norms[0] = np.pi
        # (m, n_quad) basis values at the quadrature nodes: the constant
        # factor of every projection (the warm-session hot path)
        self._quad_vander = np.polynomial.chebyshev.chebvander(
            self._quad_x, self._m - 1
        ).T

    @property
    def size(self) -> int:
        return self._m

    @property
    def t_end(self) -> float:
        return self._t_end

    @property
    def name(self) -> str:
        return "Chebyshev"

    def evaluate(self, times) -> np.ndarray:
        t = np.atleast_1d(np.asarray(times, dtype=float))
        x = 2.0 * t / self._t_end - 1.0
        return np.polynomial.chebyshev.chebvander(x, self._m - 1).T

    # projection: QuadratureProjectionMixin (Gauss-Chebyshev nodes; the
    # x-domain weights already absorb the Chebyshev weight function, so
    # c_n = <f, Ts_n>_w / <Ts_n, Ts_n>_w)

    @cached_operator
    def integration_matrix(self) -> np.ndarray:
        """Classical shifted-Chebyshev integration matrix (see module docs)."""
        m = self._m
        p = np.zeros((m, m))
        half_t = self._t_end / 2.0

        def add(row: int, col: int, value: float) -> None:
            if col < m:
                p[row, col] += value

        for n in range(m):
            # antiderivative of T_n in x-coordinates
            if n == 0:
                terms = [(1, 1.0)]
            elif n == 1:
                terms = [(0, 0.25), (2, 0.25)]
            else:
                terms = [(n + 1, 0.5 / (n + 1)), (n - 1, -0.5 / (n - 1))]
            # subtract value at x = -1 (expand constant in T_0)
            const = sum(coeff * (-1.0) ** k for k, coeff in terms)
            for k, coeff in terms:
                add(n, k, half_t * coeff)
            add(n, 0, -half_t * const)
        return p

    @cached_operator
    def fractional_integration_matrix(self, alpha: float) -> np.ndarray:
        """Spectral RL fractional-integration matrix (Gauss-Jacobi inner integral)."""
        alpha = check_fractional_order(alpha, allow_zero=True)
        if alpha == 0.0:
            return np.eye(self._m)
        n_jac = self._m + 2
        jac_nodes, jac_weights = roots_jacobi(n_jac, alpha - 1.0, 0.0)
        s_nodes = 0.5 * (jac_nodes + 1.0)
        jac_scale = 2.0**-alpha

        t = self._quad_t
        ts = t[:, None] * s_nodes[None, :]
        x = 2.0 * ts / self._t_end - 1.0
        vander = np.polynomial.chebyshev.chebvander(x.reshape(-1), self._m - 1)
        vander = vander.reshape(t.size, n_jac, self._m)
        inner = np.einsum("qjm,j->mq", vander, jac_weights) * jac_scale
        frac_vals = (t[None, :] ** alpha) / gamma_fn(alpha) * inner

        basis_vals = np.polynomial.chebyshev.chebvander(self._quad_x, self._m - 1).T
        norms = np.full(self._m, np.pi / 2.0)
        norms[0] = np.pi
        return (frac_vals * self._quad_w) @ basis_vals.T / norms[None, :]

"""Time grids for block-pulse expansions.

A :class:`TimeGrid` is the partition ``0 = t_0 < t_1 < ... < t_m = T``
underlying a block-pulse basis: interval ``i`` is ``[t_i, t_{i+1})``
with width ``h_i`` (paper eq. (1) for the uniform case, eq. (16) for
adaptive steps).  The grid owns all step bookkeeping so that bases,
solvers, and result containers agree on interval boundaries.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_float, check_positive_int, check_steps

__all__ = ["TimeGrid"]


class TimeGrid:
    """An ordered partition of ``[0, T)`` into ``m`` half-open intervals.

    Construct via the classmethods :meth:`uniform`, :meth:`from_steps`,
    :meth:`from_edges` or :meth:`geometric` rather than the raw
    constructor.

    Attributes
    ----------
    edges:
        Array of ``m + 1`` interval boundaries starting at ``0.0``.
    steps:
        Array of ``m`` interval widths ``h_i = edges[i+1] - edges[i]``.
    """

    __slots__ = ("_edges", "_steps")

    def __init__(self, edges) -> None:
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError(f"edges must be 1-D with at least 2 entries, got shape {edges.shape}")
        if edges[0] != 0.0:
            raise ValueError(f"grid must start at t = 0, got edges[0] = {edges[0]}")
        steps = np.diff(edges)
        if not np.all(np.isfinite(steps)) or np.any(steps <= 0.0):
            raise ValueError("grid edges must be finite and strictly increasing")
        self._edges = edges
        self._edges.setflags(write=False)
        self._steps = steps
        self._steps.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, t_end: float, m: int) -> "TimeGrid":
        """Uniform grid of ``m`` intervals on ``[0, t_end)`` (paper eq. (1))."""
        t_end = check_positive_float(t_end, "t_end")
        m = check_positive_int(m, "m")
        return cls(np.linspace(0.0, t_end, m + 1))

    @classmethod
    def from_steps(cls, steps) -> "TimeGrid":
        """Grid from a sequence of positive interval widths (paper eq. (16))."""
        steps = check_steps(steps)
        edges = np.concatenate([[0.0], np.cumsum(steps)])
        return cls(edges)

    @classmethod
    def from_edges(cls, edges) -> "TimeGrid":
        """Grid from explicit boundaries ``0 = t_0 < ... < t_m``."""
        return cls(edges)

    @classmethod
    def geometric(cls, t_end: float, m: int, ratio: float) -> "TimeGrid":
        """Grid whose steps grow geometrically: ``h_{i+1} = ratio * h_i``.

        Useful for waveforms with a fast initial transient: small early
        steps, large late steps (``ratio > 1``).  All steps are distinct
        whenever ``ratio != 1``, which is the precondition of the
        eigendecomposition-based fractional matrix power (paper
        eq. (25)).
        """
        t_end = check_positive_float(t_end, "t_end")
        m = check_positive_int(m, "m")
        ratio = check_positive_float(ratio, "ratio")
        if ratio == 1.0:
            return cls.uniform(t_end, m)
        weights = ratio ** np.arange(m)
        steps = t_end * weights / weights.sum()
        return cls.from_steps(steps)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def edges(self) -> np.ndarray:
        return self._edges

    @property
    def steps(self) -> np.ndarray:
        return self._steps

    @property
    def m(self) -> int:
        """Number of intervals (block-pulse terms)."""
        return self._steps.size

    @property
    def t_end(self) -> float:
        return float(self._edges[-1])

    @property
    def midpoints(self) -> np.ndarray:
        """Interval midpoints ``(t_i + t_{i+1}) / 2``."""
        return 0.5 * (self._edges[:-1] + self._edges[1:])

    @property
    def is_uniform(self) -> bool:
        """True when all steps are equal up to edge-arithmetic round-off.

        The tolerance accounts for the few-ulp (relative to ``t_end``)
        noise of ``linspace``-style edge construction, which exceeds
        ulps of the *step* for large ``m``.
        """
        h = self.t_end / self.m
        tol = max(1e-12 * h, 4.0 * np.finfo(float).eps * self.t_end)
        return bool(np.all(np.abs(self._steps - h) <= tol))

    @property
    def h(self) -> float:
        """The common step of a uniform grid.

        Raises
        ------
        ValueError
            If the grid is not uniform.
        """
        if not self.is_uniform:
            raise ValueError("grid is not uniform; use .steps for per-interval widths")
        return float(self.t_end / self.m)

    # ------------------------------------------------------------------
    # behaviour
    # ------------------------------------------------------------------
    def locate(self, times) -> np.ndarray:
        """Map times to interval indices.

        Each ``t`` in ``[0, t_end)`` maps to the ``i`` with
        ``edges[i] <= t < edges[i+1]``; ``t == t_end`` maps to the last
        interval so that closed-interval sampling is convenient.

        Raises
        ------
        ValueError
            For any time outside ``[0, t_end]``.
        """
        t = np.asarray(times, dtype=float)
        if np.any(t < 0.0) or np.any(t > self.t_end * (1 + 1e-12)):
            raise ValueError(f"times must lie in [0, {self.t_end}]")
        idx = np.searchsorted(self._edges, t, side="right") - 1
        return np.clip(idx, 0, self.m - 1)

    def refine(self, factor: int) -> "TimeGrid":
        """Split every interval into ``factor`` equal parts."""
        factor = check_positive_int(factor, "factor")
        if factor == 1:
            return self
        sub = np.linspace(0.0, 1.0, factor + 1)[1:]
        new_edges = [0.0]
        for left, width in zip(self._edges[:-1], self._steps):
            new_edges.extend(left + width * sub)
        return TimeGrid(np.asarray(new_edges))

    def __eq__(self, other) -> bool:
        if not isinstance(other, TimeGrid):
            return NotImplemented
        return self._edges.shape == other._edges.shape and bool(
            np.array_equal(self._edges, other._edges)
        )

    def __hash__(self) -> int:
        return hash((self._edges.size, self._edges.tobytes()))

    def __repr__(self) -> str:
        kind = "uniform" if self.is_uniform else "adaptive"
        return f"TimeGrid({kind}, m={self.m}, t_end={self.t_end:g})"

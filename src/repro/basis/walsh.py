"""Walsh-function basis.

The Walsh functions are the +-1-valued orthogonal family the paper
singles out in section I: "a set of low- to high-frequency basis
functions", useful when only the overall trend of the response matters.
With ``m = 2^k`` terms they are exactly the rows of an ``m x m``
Hadamard matrix applied to the block-pulse vector.

Two orderings are provided:

* ``'hadamard'`` (natural ordering) -- rows of the Sylvester-recursive
  Hadamard matrix;
* ``'sequency'`` (Walsh ordering, default) -- rows sorted by the number
  of sign changes, so index ``i`` behaves like "frequency ``i``"; this
  is the ordering that makes truncation act as a low-pass filter, the
  property the paper alludes to.
"""

from __future__ import annotations

import numpy as np

from ..errors import BasisError
from .pwconst import PiecewiseConstantBasis

__all__ = ["WalshBasis", "hadamard_matrix", "sequency_order"]


def hadamard_matrix(m: int) -> np.ndarray:
    """Sylvester-construction Hadamard matrix of order ``m`` (power of two).

    ``H_1 = [1]``, ``H_{2n} = [[H_n, H_n], [H_n, -H_n]]``; symmetric with
    ``H H^T = m I``.
    """
    if m < 1 or (m & (m - 1)) != 0:
        raise BasisError(f"Hadamard order must be a power of two, got {m}")
    h = np.array([[1.0]])
    while h.shape[0] < m:
        h = np.block([[h, h], [h, -h]])
    return h


def sequency_order(matrix: np.ndarray) -> np.ndarray:
    """Reorder Hadamard rows by sequency (number of sign changes).

    Returns the row-permuted matrix whose row ``i`` has exactly ``i``
    sign changes -- the classical Walsh ordering.
    """
    changes = np.count_nonzero(np.diff(matrix, axis=1), axis=1)
    order = np.argsort(changes, kind="stable")
    return matrix[order]


class WalshBasis(PiecewiseConstantBasis):
    """Walsh functions on ``[0, t_end)`` with ``m = 2^k`` terms.

    Parameters
    ----------
    t_end:
        Span of the basis.
    m:
        Number of terms; must be a power of two.
    ordering:
        ``'sequency'`` (default) or ``'hadamard'``.

    Examples
    --------
    >>> import numpy as np
    >>> basis = WalshBasis(1.0, 4)
    >>> np.asarray(basis.transform, dtype=int)
    array([[ 1,  1,  1,  1],
           [ 1,  1, -1, -1],
           [ 1, -1, -1,  1],
           [ 1, -1,  1, -1]])
    """

    def __init__(
        self, t_end: float, m: int, *, ordering: str = "sequency", projection: str = "average"
    ) -> None:
        if ordering not in ("sequency", "hadamard"):
            raise BasisError(f"ordering must be 'sequency' or 'hadamard', got {ordering!r}")
        self._ordering = ordering
        super().__init__(t_end, m, projection=projection)

    def with_projection(self, projection: str) -> "WalshBasis":
        """A copy with the given projection rule, preserving the ordering."""
        if projection == self.projection:
            return self
        return WalshBasis(
            self.t_end, self.size, ordering=self._ordering, projection=projection
        )

    def _build_transform(self, m: int) -> np.ndarray:
        h = hadamard_matrix(m)
        if self._ordering == "sequency":
            return sequency_order(h)
        return h

    @property
    def ordering(self) -> str:
        return self._ordering

    @property
    def name(self) -> str:
        return f"Walsh[{self._ordering}]"

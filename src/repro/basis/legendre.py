"""Shifted-Legendre polynomial basis.

The Legendre family is one of the smooth bases the paper lists as
alternatives to block pulses.  We use the shifted Legendre polynomials
``Ps_n(t) = P_n(2 t / T - 1)`` on ``[0, T]``, orthogonal with
``<Ps_i, Ps_j> = T / (2 i + 1) delta_ij``.

The operational matrix of integration is the classical tridiagonal-like
closed form derived from ``(2n+1) integral P_n = P_{n+1} - P_{n-1}``:

``integral_0^t Ps_0 = (T/2)(Ps_0 + Ps_1)``,
``integral_0^t Ps_n = (T/2) (Ps_{n+1} - Ps_{n-1}) / (2n + 1)``.

Polynomial bases admit **no** differentiation operational matrix in the
OPM sense: the derivative loses the constant term, i.e. the
integration-from-zero operator has no inverse on the span, so
:meth:`differentiation_matrix` raises and systems must be solved in the
integral formulation (see
:func:`repro.core.opm_integral.simulate_opm_integral`).

Fractional integration matrices are built by exact Gauss-Jacobi
quadrature of the Riemann-Liouville integral of each basis polynomial
followed by projection -- a spectral analogue of the block-pulse RL
matrix of :mod:`repro.opmat.rl_integral`.
"""

from __future__ import annotations


import numpy as np
from scipy.special import gamma as gamma_fn
from scipy.special import roots_jacobi

from .._validation import check_fractional_order, check_positive_float, check_positive_int
from .base import BasisSet, QuadratureProjectionMixin, cached_operator

__all__ = ["LegendreBasis"]


class LegendreBasis(QuadratureProjectionMixin, BasisSet):
    """Shifted Legendre polynomials ``Ps_0 .. Ps_{m-1}`` on ``[0, t_end]``.

    Examples
    --------
    >>> import numpy as np
    >>> basis = LegendreBasis(2.0, 4)
    >>> coeffs = basis.project(lambda t: 3.0 * t)   # linear function
    >>> np.round(coeffs, 12) + 0.0                  # 3t = 3 + 3*Ps_1(t)
    array([3., 3., 0., 0.])
    """

    def __init__(self, t_end: float, m: int, *, n_quad: int | None = None) -> None:
        self._t_end = check_positive_float(t_end, "t_end")
        self._m = check_positive_int(m, "m")
        self._n_quad = n_quad if n_quad is not None else max(64, 2 * m)
        nodes, weights = np.polynomial.legendre.leggauss(self._n_quad)
        # map [-1, 1] -> [0, T]
        self._quad_t = 0.5 * self._t_end * (nodes + 1.0)
        self._quad_w = 0.5 * self._t_end * weights
        self._norms = self._t_end / (2.0 * np.arange(self._m) + 1.0)
        # (m, n_quad) basis values at the quadrature nodes: the constant
        # factor of every projection (the warm-session hot path)
        self._quad_vander = np.polynomial.legendre.legvander(nodes, self._m - 1).T

    # ------------------------------------------------------------------
    # identification
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._m

    @property
    def t_end(self) -> float:
        return self._t_end

    @property
    def name(self) -> str:
        return "Legendre"

    # ------------------------------------------------------------------
    # function-space <-> coefficient-space
    # ------------------------------------------------------------------
    def evaluate(self, times) -> np.ndarray:
        t = np.atleast_1d(np.asarray(times, dtype=float))
        x = 2.0 * t / self._t_end - 1.0
        return np.polynomial.legendre.legvander(x, self._m - 1).T

    # projection: QuadratureProjectionMixin (Gauss-Legendre nodes)

    # ------------------------------------------------------------------
    # operational matrices
    # ------------------------------------------------------------------
    @cached_operator
    def integration_matrix(self) -> np.ndarray:
        """Classical shifted-Legendre integration matrix (see module docs)."""
        m = self._m
        p = np.zeros((m, m))
        half_t = self._t_end / 2.0
        p[0, 0] = half_t
        if m > 1:
            p[0, 1] = half_t
        for n in range(1, m):
            coeff = half_t / (2.0 * n + 1.0)
            if n + 1 < m:
                p[n, n + 1] = coeff
            p[n, n - 1] = -coeff
        return p

    @cached_operator
    def fractional_integration_matrix(self, alpha: float) -> np.ndarray:
        """Spectral RL fractional-integration matrix via Gauss-Jacobi quadrature.

        Row ``i`` holds the Legendre coefficients of
        ``I^alpha Ps_i (t) = t^alpha / Gamma(alpha)
        * integral_0^1 (1-s)^{alpha-1} Ps_i(t s) ds``,
        with the inner integral evaluated exactly (for polynomial
        integrands) by Gauss-Jacobi quadrature with weight
        ``(1-s)^{alpha-1}``.
        """
        alpha = check_fractional_order(alpha, allow_zero=True)
        if alpha == 0.0:
            return np.eye(self._m)
        n_jac = self._m + 2
        jac_nodes, jac_weights = roots_jacobi(n_jac, alpha - 1.0, 0.0)
        s_nodes = 0.5 * (jac_nodes + 1.0)  # on [0, 1]
        jac_scale = 2.0**-alpha

        # I^alpha Ps_i evaluated at the projection quadrature times.
        t = self._quad_t  # (nq,)
        # inner[i, q] = integral_0^1 (1-s)^{alpha-1} Ps_i(t_q * s) ds
        ts = t[None, :, None] * s_nodes[None, None, :]  # (1, nq, nj)
        x = 2.0 * ts / self._t_end - 1.0
        vander = np.polynomial.legendre.legvander(x.reshape(-1, n_jac), self._m - 1)
        vander = vander.reshape(t.size, n_jac, self._m)  # (nq, nj, m)
        inner = np.einsum("qjm,j->mq", vander, jac_weights) * jac_scale
        frac_vals = (t[None, :] ** alpha) / gamma_fn(alpha) * inner  # (m, nq)

        basis_vals = self.evaluate(t)  # (m, nq)
        norms = self._t_end / (2.0 * np.arange(self._m) + 1.0)
        return (frac_vals * self._quad_w) @ basis_vals.T / norms[None, :]

"""Laguerre-function basis on the semi-infinite axis.

The Laguerre functions the paper lists are

.. math::

    \\varphi_n(t) = \\sqrt{2a}\\, e^{-a t} L_n(2 a t), \\qquad n \\ge 0,

orthonormal on ``[0, infinity)``; ``a > 0`` sets the time scale.  Their
Laplace transforms are
``Phi_n(s) = sqrt(2a)/(s+a) * ((s-a)/(s+a))^n``, so the shift
``n -> n+1`` corresponds to multiplying by the all-pass factor
``z = (s-a)/(s+a)``, i.e. ``s = a (1+z)/(1-z)``.

That bilinear relation makes the Laguerre operational matrices *exactly
the same Tustin power series* as the block-pulse ones with
``2/h -> a`` and the shift ``Q`` acting on the Laguerre index instead of
the time index:

* integration: ``P = (1/a) * Toeplitz(1, -2, 2, -2, ...)``
* differentiation (zero initial value): ``D = a * Toeplitz(1, 2, 2, ...)``
* fractional: ``D^alpha = a^alpha * Toeplitz(tustin_power_coefficients(-alpha))``
  -- note the sign flip relative to block pulses, because here ``z``
  appears in the *numerator* of the integration operator.

These matrices are exact in the truncated ring (the only error is
truncating the Laguerre expansion itself), which makes this family a
second, independent route to fractional OPM simulation on long or
semi-infinite horizons.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.special import roots_laguerre

from .._validation import check_fractional_order, check_positive_float, check_positive_int
from ..errors import BasisError
from ..opmat.nilpotent import upper_toeplitz
from ..opmat.series import tustin_power_coefficients
from .base import BasisSet, cached_operator

__all__ = ["LaguerreBasis"]


class LaguerreBasis(BasisSet):
    """Laguerre functions ``phi_0 .. phi_{m-1}`` with time-scale ``a``.

    Parameters
    ----------
    a:
        Pole location / inverse time-scale of the family (``a > 0``).
        Choose ``a`` of the order of the dominant system pole for fast
        convergence of the expansion.
    m:
        Number of basis functions.
    n_quad:
        Number of Gauss-Laguerre quadrature nodes used for projection.

    Examples
    --------
    >>> import numpy as np
    >>> basis = LaguerreBasis(2.0, 8)
    >>> coeffs = basis.project(lambda t: np.exp(-2.0 * t))  # = phi_0/sqrt(4)
    >>> np.round(coeffs[:3], 10) + 0.0
    array([0.5, 0. , 0. ])
    """

    #: Largest Gauss-Laguerre order whose nodes/weights scipy computes
    #: without internal overflow (empirically ~320 as of scipy 1.x);
    #: the default rule is capped here, which still integrates products
    #: of basis polynomials exactly for every practical ``m``.
    MAX_QUADRATURE = 320

    def __init__(self, a: float, m: int, *, n_quad: int | None = None) -> None:
        self._a = check_positive_float(a, "a")
        self._m = check_positive_int(m, "m")
        if n_quad is None:
            n_quad = min(max(96, 4 * m), self.MAX_QUADRATURE)
        self._n_quad = n_quad
        # Gauss-Laguerre for integral_0^inf e^{-u} g(u) du; we substitute
        # u = 2 a t so the basis weight e^{-2 a t} becomes the GL weight.
        with np.errstate(over="ignore", invalid="ignore"):
            self._quad_u, self._quad_w = roots_laguerre(self._n_quad)
        if not (
            np.all(np.isfinite(self._quad_u)) and np.all(np.isfinite(self._quad_w))
        ):
            raise BasisError(
                f"the Gauss-Laguerre rule of order {self._n_quad} is "
                "numerically unavailable (scipy overflows above "
                f"~{self.MAX_QUADRATURE} nodes); pass a smaller n_quad"
            )

    @property
    def size(self) -> int:
        return self._m

    @property
    def t_end(self) -> float:
        """Laguerre functions live on ``[0, inf)``."""
        return np.inf

    @property
    def a(self) -> float:
        return self._a

    @property
    def name(self) -> str:
        return "Laguerre"

    # ------------------------------------------------------------------
    # function-space <-> coefficient-space
    # ------------------------------------------------------------------
    def _laguerre_functions(self, u) -> np.ndarray:
        """Scaled values ``l_n(u) = e^{-u/2} L_n(u)`` for ``n < m``.

        Computed by the three-term Laguerre recurrence carried directly
        in the scaled variable (the scaling is a common factor, so the
        recurrence coefficients are unchanged).  Unlike evaluating
        ``L_n`` and ``e^{-u/2}`` separately -- which overflows/underflows
        to ``inf * 0 = NaN`` at the large nodes of high-order
        Gauss-Laguerre rules -- the scaled values are uniformly bounded.
        """
        u = np.atleast_1d(np.asarray(u, dtype=float))
        out = np.empty((self._m, u.size))
        curr = np.exp(-0.5 * u)
        out[0] = curr
        prev = np.zeros_like(u)
        for n in range(1, self._m):
            prev, curr = curr, ((2.0 * n - 1.0 - u) * curr - (n - 1.0) * prev) / n
            out[n] = curr
        return out

    def evaluate(self, times) -> np.ndarray:
        t = np.atleast_1d(np.asarray(times, dtype=float))
        return np.sqrt(2.0 * self._a) * self._laguerre_functions(2.0 * self._a * t)

    def project(self, func: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        # c_n = integral_0^inf f(t) phi_n(t) dt ; substitute u = 2 a t:
        # = 1/sqrt(2a) integral [w_i e^{u}] [e^{-u/2} L_n(u)] f(u / 2a) du
        u = self._quad_u
        t = u / (2.0 * self._a)
        f_vals = np.asarray(func(t), dtype=float)
        # w ~ e^{-u} * poly, so w e^{u} is well-scaled -- but only when
        # combined in log space (w alone underflows at the largest
        # nodes, where its contribution is genuinely negligible)
        with np.errstate(divide="ignore"):
            scaled_w = np.exp(np.log(self._quad_w) + u)
        coeffs = self._laguerre_functions(u) @ (scaled_w * f_vals)
        return coeffs / np.sqrt(2.0 * self._a)

    # ------------------------------------------------------------------
    # operational matrices (exact Tustin forms, see module docstring)
    # ------------------------------------------------------------------
    @cached_operator
    def integration_matrix(self) -> np.ndarray:
        return upper_toeplitz(tustin_power_coefficients(1.0, self._m)) / self._a

    @cached_operator
    def differentiation_matrix(self) -> np.ndarray:
        return self._a * upper_toeplitz(tustin_power_coefficients(-1.0, self._m))

    @cached_operator
    def fractional_differentiation_coefficients(self, alpha: float) -> np.ndarray:
        """First-row Toeplitz coefficients of ``D^alpha``.

        The defining row of the (upper-Toeplitz) fractional
        differentiation matrix -- the engine's triangular column sweep
        consumes exactly this row, so it is exposed (and cached)
        separately from the full matrix.
        """
        alpha = check_fractional_order(alpha, allow_zero=True)
        return self._a**alpha * tustin_power_coefficients(-alpha, self._m)

    @cached_operator
    def fractional_differentiation_matrix(self, alpha: float) -> np.ndarray:
        return upper_toeplitz(self.fractional_differentiation_coefficients(alpha))

    @cached_operator
    def fractional_integration_matrix(self, alpha: float) -> np.ndarray:
        alpha = check_fractional_order(alpha, allow_zero=True)
        return self._a**-alpha * upper_toeplitz(tustin_power_coefficients(alpha, self._m))

    @cached_operator
    def gram_matrix(self, n_quad: int = 256) -> np.ndarray:
        """Exact-by-quadrature Gram matrix (identity for this family)."""
        u, w = roots_laguerre(min(max(n_quad, 2 * self._m), self.MAX_QUADRATURE))
        # <phi_i, phi_j> = (1/2a) * 2a * integral e^{-u} L_i L_j du,
        # evaluated through the scaled l_n = e^{-u/2} L_n values with
        # weights w e^{u} (see project for the scaling rationale)
        with np.errstate(divide="ignore"):
            scaled_w = np.exp(np.log(w) + u)
        vals = self._laguerre_functions(u)
        return (vals * scaled_w) @ vals.T

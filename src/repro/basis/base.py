"""Abstract interface for basis-function families.

Section I of the paper points out that OPM "can readily switch to using
other basis functions" -- block-pulse, Walsh, Haar, Legendre, Laguerre,
... -- each with its own merits.  This module fixes the contract those
families implement so the solvers can stay basis-agnostic.

A basis is a finite family ``psi_0, ..., psi_{m-1}`` on ``[0, T)``.  A
function is represented by its coefficient vector ``c`` with
``f(t) ~= sum_i c_i psi_i(t)``; matrices act on coefficients:

* ``integration_matrix()`` returns ``P`` with
  ``integral_0^t psi(tau) dtau ~= P psi(t)`` so integration maps
  coefficients ``c -> P^T c`` (paper eq. (3) for block pulses);
* ``differentiation_matrix()`` returns ``D`` with
  ``d/dt psi ~= D psi`` where that operator exists (paper eq. (7));
  polynomial bases raise :class:`~repro.errors.BasisError` because the
  from-zero derivative operator is not representable in the span (the
  derivative drops the initial-condition information), and the
  integral-form solver must be used instead.

Implementations must also provide ``evaluate`` / ``project`` /
``synthesize`` so the solvers can move between function space and
coefficient space.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from ..errors import BasisError

__all__ = ["BasisSet"]


class BasisSet(abc.ABC):
    """Common interface of all basis families in :mod:`repro.basis`."""

    # ------------------------------------------------------------------
    # identification
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of basis functions ``m``."""

    @property
    @abc.abstractmethod
    def t_end(self) -> float:
        """Right end of the span ``[0, t_end)``."""

    @property
    def name(self) -> str:
        """Short human-readable family name (class name by default)."""
        return type(self).__name__

    # ------------------------------------------------------------------
    # function-space <-> coefficient-space
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def evaluate(self, times) -> np.ndarray:
        """Evaluate all basis functions at ``times``.

        Returns an array of shape ``(size, len(times))`` whose row ``i``
        is ``psi_i`` sampled at the given times.
        """

    @abc.abstractmethod
    def project(self, func: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Best-approximation coefficients of a scalar function.

        ``func`` must accept a 1-D array of times and return the
        matching array of values.  Returns the coefficient vector of
        length ``size``.
        """

    def project_vector(self, func: Callable[[np.ndarray], np.ndarray], width: int) -> np.ndarray:
        """Project a vector-valued function component by component.

        ``func(times)`` must return an array of shape
        ``(width, len(times))``.  Returns coefficients of shape
        ``(width, size)`` -- the layout of the matrices ``U`` and ``X``
        in paper eqs. (10)-(11).
        """
        coeffs = np.empty((width, self.size))
        for row in range(width):
            coeffs[row] = self.project(lambda t, _row=row: np.asarray(func(t))[_row])
        return coeffs

    def synthesize(self, coeffs, times) -> np.ndarray:
        """Reconstruct function values from coefficients.

        ``coeffs`` may be a vector of length ``size`` (scalar function)
        or a matrix ``(k, size)`` (vector function); the result has
        shape ``(len(times),)`` or ``(k, len(times))`` accordingly.
        """
        coeffs = np.asarray(coeffs, dtype=float)
        values = self.evaluate(times)
        if coeffs.ndim == 1:
            if coeffs.size != self.size:
                raise BasisError(
                    f"coefficient length {coeffs.size} != basis size {self.size}"
                )
            return coeffs @ values
        if coeffs.ndim == 2:
            if coeffs.shape[1] != self.size:
                raise BasisError(
                    f"coefficient width {coeffs.shape[1]} != basis size {self.size}"
                )
            return coeffs @ values
        raise BasisError(f"coeffs must be 1-D or 2-D, got ndim={coeffs.ndim}")

    # ------------------------------------------------------------------
    # operational matrices
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def integration_matrix(self) -> np.ndarray:
        """Operational matrix of integration ``P`` (``integral psi ~= P psi``)."""

    def differentiation_matrix(self) -> np.ndarray:
        """Operational matrix of differentiation ``D`` (``d psi/dt ~= D psi``).

        Raises
        ------
        BasisError
            If the family admits no differentiation operational matrix
            (polynomial bases; see the module docstring).
        """
        raise BasisError(f"{self.name} does not admit a differentiation operational matrix")

    def fractional_differentiation_matrix(self, alpha: float) -> np.ndarray:
        """Fractional differentiation matrix ``D^alpha``; optional."""
        raise BasisError(
            f"{self.name} does not implement fractional differentiation matrices"
        )

    def fractional_integration_matrix(self, alpha: float) -> np.ndarray:
        """Fractional integration matrix; optional."""
        raise BasisError(f"{self.name} does not implement fractional integration matrices")

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def gram_matrix(self, n_quad: int = 256) -> np.ndarray:
        """Numerical Gram matrix ``G[i,j] = <psi_i, psi_j>`` on ``[0, t_end)``.

        Default implementation uses composite Gauss-Legendre quadrature
        with ``n_quad`` panels; orthogonal families override nothing and
        simply test ``G`` is (close to) diagonal.
        """
        nodes, weights = np.polynomial.legendre.leggauss(4)
        edges = np.linspace(0.0, self.t_end, n_quad + 1)
        mids = 0.5 * (edges[:-1] + edges[1:])
        half = 0.5 * np.diff(edges)
        all_t = (mids[:, None] + half[:, None] * nodes[None, :]).ravel()
        all_w = (half[:, None] * weights[None, :]).ravel()
        vals = self.evaluate(all_t)
        return (vals * all_w) @ vals.T

    def __repr__(self) -> str:
        return f"{self.name}(m={self.size}, t_end={self.t_end:g})"

"""Abstract interface for basis-function families.

Section I of the paper points out that OPM "can readily switch to using
other basis functions" -- block-pulse, Walsh, Haar, Legendre, Laguerre,
... -- each with its own merits.  This module fixes the contract those
families implement so the solvers can stay basis-agnostic.

A basis is a finite family ``psi_0, ..., psi_{m-1}`` on ``[0, T)``.  A
function is represented by its coefficient vector ``c`` with
``f(t) ~= sum_i c_i psi_i(t)``; matrices act on coefficients:

* ``integration_matrix()`` returns ``P`` with
  ``integral_0^t psi(tau) dtau ~= P psi(t)`` so integration maps
  coefficients ``c -> P^T c`` (paper eq. (3) for block pulses);
* ``differentiation_matrix()`` returns ``D`` with
  ``d/dt psi ~= D psi`` where that operator exists (paper eq. (7));
  polynomial bases raise :class:`~repro.errors.BasisError` because the
  from-zero derivative operator is not representable in the span (the
  derivative drops the initial-condition information), and the
  integral-form solver must be used instead.

Implementations must also provide ``evaluate`` / ``project`` /
``synthesize`` so the solvers can move between function space and
coefficient space.
"""

from __future__ import annotations

import abc
import functools
from typing import Callable

import numpy as np

from ..errors import BasisError

__all__ = ["BasisSet", "QuadratureProjectionMixin", "cached_operator"]


def cached_operator(method):
    """Memoise an operational-matrix builder per basis instance.

    Operational matrices depend only on the basis parameters and the
    call arguments, yet historically every ``integration_matrix()`` /
    ``fractional_integration_matrix(alpha)`` call re-ran the full
    construction.  Decorating a builder with ``cached_operator`` stores
    one result per ``(method, args, kwargs)`` signature on the instance,
    marks returned arrays read-only (they are shared between callers),
    and counts actual constructions in
    :attr:`BasisSet.operator_builds` -- which is what the engine's
    warm-session regression tests assert stays flat.
    """
    name = method.__name__

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        cache = self.__dict__.setdefault("_operator_cache", {})
        key = (name, tuple(float(a) if isinstance(a, (int, float)) else a for a in args),
               tuple(sorted(kwargs.items())))
        try:
            hit = cache.get(key)
        except TypeError:  # unhashable argument: build without caching
            return method(self, *args, **kwargs)
        if hit is None:
            hit = method(self, *args, **kwargs)
            if isinstance(hit, np.ndarray):
                hit.setflags(write=False)
            cache[key] = hit
            self.__dict__["_operator_builds"] = (
                self.__dict__.get("_operator_builds", 0) + 1
            )
        return hit

    return wrapper


class BasisSet(abc.ABC):
    """Common interface of all basis families in :mod:`repro.basis`."""

    # ------------------------------------------------------------------
    # identification
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of basis functions ``m``."""

    @property
    @abc.abstractmethod
    def t_end(self) -> float:
        """Right end of the span ``[0, t_end)``."""

    @property
    def name(self) -> str:
        """Short human-readable family name (class name by default)."""
        return type(self).__name__

    # ------------------------------------------------------------------
    # function-space <-> coefficient-space
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def evaluate(self, times) -> np.ndarray:
        """Evaluate all basis functions at ``times``.

        Returns an array of shape ``(size, len(times))`` whose row ``i``
        is ``psi_i`` sampled at the given times.
        """

    @abc.abstractmethod
    def project(self, func: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Best-approximation coefficients of a scalar function.

        ``func`` must accept a 1-D array of times and return the
        matching array of values.  Returns the coefficient vector of
        length ``size``.
        """

    def project_vector(self, func: Callable[[np.ndarray], np.ndarray], width: int) -> np.ndarray:
        """Project a vector-valued function component by component.

        ``func(times)`` must return an array of shape
        ``(width, len(times))``.  Returns coefficients of shape
        ``(width, size)`` -- the layout of the matrices ``U`` and ``X``
        in paper eqs. (10)-(11).
        """
        coeffs = np.empty((width, self.size))
        for row in range(width):
            coeffs[row] = self.project(lambda t, _row=row: np.asarray(func(t))[_row])
        return coeffs

    def synthesize(self, coeffs, times) -> np.ndarray:
        """Reconstruct function values from coefficients.

        ``coeffs`` may be a vector of length ``size`` (scalar function)
        or a matrix ``(k, size)`` (vector function); the result has
        shape ``(len(times),)`` or ``(k, len(times))`` accordingly.
        """
        coeffs = np.asarray(coeffs, dtype=float)
        values = self.evaluate(times)
        if coeffs.ndim == 1:
            if coeffs.size != self.size:
                raise BasisError(
                    f"coefficient length {coeffs.size} != basis size {self.size}"
                )
            return coeffs @ values
        if coeffs.ndim == 2:
            if coeffs.shape[1] != self.size:
                raise BasisError(
                    f"coefficient width {coeffs.shape[1]} != basis size {self.size}"
                )
            return coeffs @ values
        raise BasisError(f"coeffs must be 1-D or 2-D, got ndim={coeffs.ndim}")

    # ------------------------------------------------------------------
    # operational matrices
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def integration_matrix(self) -> np.ndarray:
        """Operational matrix of integration ``P`` (``integral psi ~= P psi``)."""

    def differentiation_matrix(self) -> np.ndarray:
        """Operational matrix of differentiation ``D`` (``d psi/dt ~= D psi``).

        Raises
        ------
        BasisError
            If the family admits no differentiation operational matrix
            (polynomial bases; see the module docstring).
        """
        raise BasisError(f"{self.name} does not admit a differentiation operational matrix")

    def fractional_differentiation_matrix(self, alpha: float) -> np.ndarray:
        """Fractional differentiation matrix ``D^alpha``; optional."""
        raise BasisError(
            f"{self.name} does not implement fractional differentiation matrices"
        )

    def fractional_integration_matrix(self, alpha: float) -> np.ndarray:
        """Fractional integration matrix; optional."""
        raise BasisError(f"{self.name} does not implement fractional integration matrices")

    # ------------------------------------------------------------------
    # operator caching
    # ------------------------------------------------------------------
    @property
    def operator_builds(self) -> int:
        """Number of operational-matrix constructions actually performed.

        Calls served from the per-instance cache installed by
        :func:`cached_operator` do not increment this counter; a warm
        :class:`~repro.engine.session.Simulator` therefore keeps it
        flat across repeated ``run``/``sweep``/``march`` calls.
        """
        return self.__dict__.get("_operator_builds", 0)

    def clear_operator_cache(self) -> None:
        """Drop all cached operational matrices (testing/memory hook)."""
        self.__dict__.pop("_operator_cache", None)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @cached_operator
    def gram_matrix(self, n_quad: int = 256) -> np.ndarray:
        """Numerical Gram matrix ``G[i,j] = <psi_i, psi_j>`` on ``[0, t_end)``.

        Default implementation uses composite Gauss-Legendre quadrature
        with ``n_quad`` panels; orthogonal families override nothing and
        simply test ``G`` is (close to) diagonal.
        """
        nodes, weights = np.polynomial.legendre.leggauss(4)
        edges = np.linspace(0.0, self.t_end, n_quad + 1)
        mids = 0.5 * (edges[:-1] + edges[1:])
        half = 0.5 * np.diff(edges)
        all_t = (mids[:, None] + half[:, None] * nodes[None, :]).ravel()
        all_w = (half[:, None] * weights[None, :]).ravel()
        vals = self.evaluate(all_t)
        return (vals * all_w) @ vals.T

    def __repr__(self) -> str:
        return f"{self.name}(m={self.size}, t_end={self.t_end:g})"


class QuadratureProjectionMixin:
    """Weighted-quadrature projection shared by the spectral families.

    Subclasses (Legendre, Chebyshev) set in ``__init__``:

    * ``_quad_t`` -- quadrature nodes on ``[0, t_end]``;
    * ``_quad_w`` -- matching weights (absorbing any weight function);
    * ``_quad_vander`` -- ``(m, n_quad)`` basis values at the nodes;
    * ``_norms`` -- squared norms ``<psi_i, psi_i>`` under the family's
      inner product.

    Projection is then one GEMM -- ``c = (f(t_q) * w) V^T / norms`` --
    and :meth:`project_values` is the value-space entry point the
    engine's hybrid marching (``OperatorBundle.history_matrix``) builds
    on.
    """

    @property
    def quadrature_times(self) -> np.ndarray:
        """Projection quadrature nodes on ``[0, t_end]``."""
        return self._quad_t

    def project(self, func: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Best-approximation coefficients of a scalar function."""
        return self.project_values(np.asarray(func(self._quad_t), dtype=float))

    def project_values(self, values) -> np.ndarray:
        """Coefficients from samples at :attr:`quadrature_times`.

        ``values`` has shape ``(..., n_quad)``; the quadrature weights
        and norms are applied along the trailing axis, so a whole stack
        of functions projects in one GEMM.
        """
        values = np.asarray(values, dtype=float)
        if values.shape[-1] != self._quad_t.size:
            raise BasisError(
                f"values must have {self._quad_t.size} trailing samples "
                f"(one per quadrature node), got {values.shape}"
            )
        return (values * self._quad_w) @ self._quad_vander.T / self._norms

    def project_vector(self, func: Callable[[np.ndarray], np.ndarray], width: int) -> np.ndarray:
        """Project a vector-valued function in one evaluation pass."""
        values = np.asarray(func(self._quad_t), dtype=float)
        if values.shape != (width, self._quad_t.size):
            raise BasisError(
                f"vector function must return ({width}, {self._quad_t.size}) "
                f"quadrature values, got {values.shape}"
            )
        return self.project_values(values)

"""Haar-wavelet basis.

The Haar family is the multiresolution piecewise-constant basis the
paper lists among the OPM-compatible bases.  With ``m = 2^k`` terms the
basis consists of the constant function plus wavelets
``h_{j,l}(t) = 2^{j/2} ( 1 on the first half of its support, -1 on the
second half )`` for scales ``j = 0 .. k-1`` and shifts
``l = 0 .. 2^j - 1``.  In block-pulse coordinates the transform matrix
``W`` satisfies ``W W^T = m I``, so all operational matrices transfer by
conjugation exactly as for Walsh functions.
"""

from __future__ import annotations

import numpy as np

from .pwconst import PiecewiseConstantBasis

__all__ = ["HaarBasis", "haar_matrix"]


def haar_matrix(m: int) -> np.ndarray:
    """Haar transform matrix of order ``m = 2^k`` in block-pulse coordinates.

    Row 0 is all ones; row ``2^j + l`` is the wavelet of scale ``j`` and
    shift ``l`` scaled by ``2^{j/2}``.  Satisfies ``W W^T = m I``.
    """
    if m < 1 or (m & (m - 1)) != 0:
        raise ValueError(f"Haar order must be a power of two, got {m}")
    w = np.zeros((m, m))
    w[0, :] = 1.0
    row = 1
    scale_count = 1
    while row < m:
        j = int(np.log2(scale_count))
        support = m // scale_count  # cells covered by one wavelet at this scale
        amp = np.sqrt(scale_count)  # 2^{j/2}
        for shift in range(scale_count):
            start = shift * support
            half = support // 2
            w[row, start : start + half] = amp
            w[row, start + half : start + support] = -amp
            row += 1
        scale_count *= 2
    return w


class HaarBasis(PiecewiseConstantBasis):
    """Haar wavelets on ``[0, t_end)`` with ``m = 2^k`` terms.

    Examples
    --------
    >>> import numpy as np
    >>> basis = HaarBasis(1.0, 4)
    >>> basis.transform * 2  # doctest: +NORMALIZE_WHITESPACE
    array([[ 2.        ,  2.        ,  2.        ,  2.        ],
           [ 2.        ,  2.        , -2.        , -2.        ],
           [ 2.82842712, -2.82842712,  0.        ,  0.        ],
           [ 0.        ,  0.        ,  2.82842712, -2.82842712]])
    """

    def _build_transform(self, m: int) -> np.ndarray:
        return haar_matrix(m)

    @property
    def name(self) -> str:
        return "Haar"

"""Basis-function families for operational-matrix simulation.

The paper works with block-pulse functions (BPFs) and notes that "there
exist various other basis functions, such as the Walsh functions, the
Laguerre functions, the Legendre functions, the Haar functions, etc.",
each usable within the same OPM framework.  This subpackage provides:

* :class:`~repro.basis.grid.TimeGrid` -- uniform/adaptive partitions;
* :class:`~repro.basis.block_pulse.BlockPulseBasis` -- the paper's basis;
* :class:`~repro.basis.walsh.WalshBasis`,
  :class:`~repro.basis.haar.HaarBasis` -- exact orthogonal transforms of
  BPFs (power-of-two sizes) with conjugated operational matrices;
* :class:`~repro.basis.legendre.LegendreBasis`,
  :class:`~repro.basis.chebyshev.ChebyshevBasis` -- smooth polynomial
  bases with classical integration matrices (integral-form solving);
* :class:`~repro.basis.laguerre.LaguerreBasis` -- semi-infinite-horizon
  family with exact Tustin-form operational matrices.
"""

from .base import BasisSet, cached_operator
from .block_pulse import BlockPulseBasis
from .chebyshev import ChebyshevBasis
from .grid import TimeGrid
from .haar import HaarBasis, haar_matrix
from .laguerre import LaguerreBasis
from .legendre import LegendreBasis
from .walsh import WalshBasis, hadamard_matrix, sequency_order

__all__ = [
    "BasisSet",
    "cached_operator",
    "TimeGrid",
    "BlockPulseBasis",
    "WalshBasis",
    "HaarBasis",
    "LegendreBasis",
    "ChebyshevBasis",
    "LaguerreBasis",
    "hadamard_matrix",
    "haar_matrix",
    "sequency_order",
]

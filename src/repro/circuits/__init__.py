"""Circuit substrate: components, netlists, assembly, workload generators.

This is the EDA layer the paper's evaluation runs on: netlist
description (:mod:`~repro.circuits.netlist`, hierarchical
``.subckt``/``X`` decks flattened at parse time), circuit-graph
analysis and lint (:mod:`~repro.circuits.graph`), MNA assembly into
DAE / fractional models (:mod:`~repro.circuits.mna`), nodal-analysis
assembly into second-order models (:mod:`~repro.circuits.nodal`), and
the two benchmark workload generators -- the 3-D power grid of
section V-B (:mod:`~repro.circuits.power_grid`) and the fractional
transmission line of section V-A
(:mod:`~repro.circuits.transmission_line`).
"""

from .cards import AcCard, AnalysisSpec, TranCard
from .components import (
    CPE,
    VCCS,
    Capacitor,
    CurrentSource,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from .graph import CircuitGraph, GraphComponent, LintIssue, LintReport
from .ladder import rc_ladder_netlist, rlc_ladder_netlist
from .mna import assemble_mna, assemble_mna_restamp, output_matrix
from .netlist import Netlist
from .nodal import assemble_na
from .power_grid import grid_node_name, power_grid, power_grid_models
from .netlist import parse_source_spec, parse_value
from .sources import (
    Constant,
    ExpPulse,
    PiecewiseLinear,
    RaisedCosinePulse,
    Ramp,
    Sine,
    SpiceExp,
    SpicePulse,
    SpiceSin,
    Step,
    Waveform,
)
from .transmission_line import fractional_line_model, fractional_line_netlist

__all__ = [
    "Netlist",
    "AnalysisSpec",
    "TranCard",
    "AcCard",
    "parse_value",
    "parse_source_spec",
    "CircuitGraph",
    "GraphComponent",
    "LintIssue",
    "LintReport",
    "Resistor",
    "Capacitor",
    "Inductor",
    "CPE",
    "VCCS",
    "MutualInductance",
    "CurrentSource",
    "VoltageSource",
    "assemble_mna",
    "assemble_mna_restamp",
    "assemble_na",
    "output_matrix",
    "power_grid",
    "power_grid_models",
    "grid_node_name",
    "fractional_line_model",
    "fractional_line_netlist",
    "rc_ladder_netlist",
    "rlc_ladder_netlist",
    "Waveform",
    "Constant",
    "Step",
    "Ramp",
    "Sine",
    "ExpPulse",
    "RaisedCosinePulse",
    "PiecewiseLinear",
    "SpiceSin",
    "SpicePulse",
    "SpiceExp",
]

"""Nodal analysis: netlist -> second-order (high-order) model.

Paper section V-B: "A second-order differential model can be generated
using nodal analysis (NA) due to the existence of inductors."  The
construction keeps *only node voltages* as unknowns.  KCL with inductor
branch currents ``i_l = L^{-1} integral A_L^T v`` is an
integro-differential equation; differentiating once gives

.. math::

    C \\ddot{v} + G \\dot{v} + \\Gamma v = -S \\dot{u}(t), \\qquad
    \\Gamma = A_L L^{-1} A_L^T ,

a second-order model of size ``n_nodes`` -- smaller than the MNA DAE,
which additionally carries one state per inductor (75 K vs 110 K in the
paper's grid).  The price: the *derivative* of the source vector drives
the system, so source waveforms must be differentiable
(:meth:`repro.circuits.sources.Waveform.derivative`;
``netlist.input_function(derivative=True)`` builds the right input).

CPEs of order ``alpha`` contribute a ``d^{alpha+1}`` term after the
differentiation, turning the result into a general
:class:`~repro.core.lti.MultiTermSystem`.

Restrictions (validated): no ideal voltage sources (NA cannot stamp
them -- convert to Norton form, as the power-grid generator does).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..core.lti import MultiTermSystem, SecondOrderSystem
from ..errors import NetlistError
from .components import CPE, VCCS, Capacitor, CurrentSource, Inductor, Resistor
from .mna import output_matrix
from .netlist import Netlist

__all__ = ["assemble_na"]


def assemble_na(netlist: Netlist, outputs=None):
    """Assemble the second-order nodal-analysis model of a netlist.

    Parameters
    ----------
    netlist:
        Circuit with R, C, L, CPE and current sources only.
    outputs:
        Optional node-name list selecting output voltages.

    Returns
    -------
    SecondOrderSystem | MultiTermSystem
        ``C v'' + G v' + Gamma v = -S u'`` (plus ``d^{alpha+1}`` CPE
        terms).  **The input of this model is** ``du/dt``; obtain it
        with ``netlist.input_function(derivative=True)``.

    Raises
    ------
    NetlistError
        If the netlist contains voltage sources.

    Examples
    --------
    >>> from repro.circuits.netlist import Netlist
    >>> from repro.circuits.sources import Ramp
    >>> nl = Netlist()
    >>> _ = nl.add_current_source("I1", "0", "n1", Ramp(1e-3, rise=1e-9))
    >>> nl.add_resistor("R1", "n1", "0", 10.0)
    >>> nl.add_capacitor("C1", "n1", "0", 1e-12)
    >>> nl.add_inductor("L1", "n1", "0", 1e-9)
    >>> assemble_na(nl).n_states
    1
    """
    if netlist.voltage_sources:
        raise NetlistError(
            "nodal analysis cannot stamp ideal voltage sources; "
            "use assemble_mna or convert sources to Norton form"
        )
    n = netlist.n_nodes
    if n == 0:
        raise NetlistError("netlist has no non-ground nodes")
    p = max(netlist.n_channels, 1)

    def vidx(node: str) -> int:
        return -1 if netlist.is_ground(node) else netlist.node_index(node)

    def stamp_pair(rows, cols, vals, ia, ib, w) -> None:
        for r, c, v in (
            (ia, ia, +w),
            (ib, ib, +w),
            (ia, ib, -w),
            (ib, ia, -w),
        ):
            if r >= 0 and c >= 0:
                rows.append(r)
                cols.append(c)
                vals.append(v)

    cap = ([], [], [])
    con = ([], [], [])
    frac: dict[float, tuple[list, list, list]] = {}
    b = np.zeros((n, p))
    inductors = netlist.inductors
    n_l = len(inductors)

    for el in netlist.elements:
        ia, ib = vidx(el.a), vidx(el.b)
        if isinstance(el, Capacitor):
            stamp_pair(*cap, ia, ib, el.capacitance)
        elif isinstance(el, Resistor):
            stamp_pair(*con, ia, ib, el.conductance)
        elif isinstance(el, Inductor):
            pass  # handled below via the inductance-matrix route
        elif isinstance(el, CPE):
            entry = frac.setdefault(float(el.alpha), ([], [], []))
            stamp_pair(*entry, ia, ib, el.q)
        elif isinstance(el, VCCS):
            # KCL: +gm (v_c - v_d) leaves a, enters b (asymmetric stamp)
            ic, idx = vidx(el.c), vidx(el.d)
            rows, cols, vals = con
            for r, c_, v in (
                (ia, ic, +el.gm),
                (ia, idx, -el.gm),
                (ib, ic, -el.gm),
                (ib, idx, +el.gm),
            ):
                if r >= 0 and c_ >= 0:
                    rows.append(r)
                    cols.append(c_)
                    vals.append(v)
        elif isinstance(el, CurrentSource):
            # KCL carries +scale*u leaving node a; after moving to the
            # right-hand side and differentiating, B multiplies du/dt.
            if ia >= 0:
                b[ia, el.channel] -= el.scale
            if ib >= 0:
                b[ib, el.channel] += el.scale
        else:  # pragma: no cover - voltage sources rejected above
            raise NetlistError(f"element {el.name!r} has no NA stamp")

    def build(triple) -> sp.csr_matrix:
        rows, cols, vals = triple
        return sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()

    C_mat, G_mat = build(cap), build(con)

    # stiffness term Gamma = A_L L^{-1} A_L^T with A_L the inductor
    # incidence and L the (possibly coupled) inductance matrix; the
    # uncoupled case reduces to the familiar 1/L_i pair stamps
    if n_l:
        inc_rows, inc_cols, inc_vals = [], [], []
        for col, el in enumerate(inductors):
            for node, sign in ((vidx(el.a), 1.0), (vidx(el.b), -1.0)):
                if node >= 0:
                    inc_rows.append(node)
                    inc_cols.append(col)
                    inc_vals.append(sign)
        a_l = sp.coo_matrix((inc_vals, (inc_rows, inc_cols)), shape=(n, n_l)).tocsc()
        l_mat = sp.lil_matrix((n_l, n_l))
        col_of = {el.name: k for k, el in enumerate(inductors)}
        for k, el in enumerate(inductors):
            l_mat[k, k] = el.inductance
        for pair in netlist.couplings:
            i, j = col_of[pair.inductor1], col_of[pair.inductor2]
            mutual = pair.coupling * np.sqrt(
                inductors[i].inductance * inductors[j].inductance
            )
            l_mat[i, j] += mutual
            l_mat[j, i] += mutual
        solved = spla.spsolve(l_mat.tocsc(), a_l.T.tocsc())
        if not sp.issparse(solved):  # tiny systems may come back dense
            solved = sp.csr_matrix(np.atleast_2d(solved))
        Gamma = sp.csr_matrix(a_l @ solved)
    else:
        Gamma = sp.csr_matrix((n, n))
    C_out = None if outputs is None else output_matrix(netlist, outputs, n)

    if not frac:
        return SecondOrderSystem(C_mat, G_mat, Gamma, b, C=C_out)
    terms = [(2.0, C_mat), (1.0, G_mat), (0.0, Gamma)]
    for alpha, entry in sorted(frac.items()):
        terms.append((alpha + 1.0, build(entry)))
    return MultiTermSystem(terms, b, C=C_out)

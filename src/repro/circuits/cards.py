"""Typed analysis cards: the dot-command side of a SPICE deck.

A netlist is more than its element cards -- the ``.tran`` / ``.ac`` /
``.ic`` / ``.options`` dot-commands describe *what to do* with the
circuit.  :meth:`repro.circuits.netlist.Netlist.from_spice` parses them
into the containers below, and the netlist front door
(:func:`repro.engine.netlist_session.simulate_netlist`, the
``python -m repro --netlist`` CLI) executes them: ``.tran`` routes
through the cached :class:`~repro.engine.session.Simulator` session
(``run`` or windowed ``march``), ``.ac`` through
:func:`repro.analysis.frequency.frequency_response`, ``.ic`` becomes
the model's initial state, and ``.options`` selects the basis family,
solver method, term count, and window count.

Supported cards::

    .tran <tstep> <tstop> [tstart] [tmax] [uic]
    .ac  dec|oct|lin <n> <fstart> <fstop>
    .ic  v(<node>)=<value> ...
    .options [basis=<family>] [method=<name>] [m=<terms>]
             (method: 'opm' and the fractional zoo -- 'gl',
             'oustaloup', 'jacobi' -- or a one-shot baseline name;
             see repro.core.dispatch.SIMULATION_METHODS)
             [windows=<k>] [backend=dense|sparse|auto]
             [reduce=auto|off] [mor_order=<q>]
             [memory=exact|soe] [memory_rtol=<tol>] ...

Unknown ``.options`` keys are retained verbatim in
:attr:`AnalysisSpec.extra_options` (real decks carry tolerance options
this engine does not need); unknown dot-commands are ignored by the
parser for SPICE-deck compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import NetlistError

__all__ = ["TranCard", "AcCard", "AnalysisSpec"]

#: ``.ac`` sweep variations (points per decade / per octave / total).
AC_VARIATIONS = ("dec", "oct", "lin")

#: ``.options`` keys the engine interprets (anything else is retained
#: in :attr:`AnalysisSpec.extra_options`).
KNOWN_OPTIONS = (
    "basis",
    "method",
    "m",
    "windows",
    "backend",
    "reduce",
    "mor_order",
    "memory",
    "memory_rtol",
)


@dataclass(frozen=True)
class TranCard:
    """A ``.tran <tstep> <tstop> [tstart] [tmax] [uic]`` card.

    ``tstep`` is the printing/suggested time step and fixes the default
    basis-term count ``m = round(tstop / tstep)``; ``tstart`` and
    ``tmax`` are accepted for SPICE compatibility (the OPM engine
    always solves from ``t = 0`` at its own resolution).

    Examples
    --------
    >>> card = TranCard(tstep=1e-5, tstop=5e-3)
    >>> card.steps
    500
    """

    tstep: float
    tstop: float
    tstart: float = 0.0
    tmax: float | None = None
    uic: bool = False

    def __post_init__(self) -> None:
        if self.tstep <= 0.0:
            raise NetlistError(f".tran tstep must be positive, got {self.tstep:g}")
        if self.tstop <= 0.0:
            raise NetlistError(f".tran tstop must be positive, got {self.tstop:g}")
        if self.tstep > self.tstop:
            raise NetlistError(
                f".tran tstep ({self.tstep:g}) exceeds tstop ({self.tstop:g})"
            )
        if self.tstart < 0.0 or self.tstart >= self.tstop:
            raise NetlistError(
                f".tran tstart must lie in [0, tstop), got {self.tstart:g}"
            )

    @property
    def steps(self) -> int:
        """Default number of basis terms: ``round(tstop / tstep)``."""
        return max(int(round(self.tstop / self.tstep)), 1)


@dataclass(frozen=True)
class AcCard:
    """An ``.ac dec|oct|lin <n> <fstart> <fstop>`` card.

    ``dec``/``oct`` place ``n`` points per decade/octave on a log grid;
    ``lin`` places ``n`` points in total on a linear grid.  Frequencies
    are in hertz, as in SPICE.

    Examples
    --------
    >>> card = AcCard("dec", 2, 1.0, 100.0)
    >>> [float(round(f, 3)) for f in card.frequencies()]
    [1.0, 3.162, 10.0, 31.623, 100.0]
    """

    variation: str
    n: int
    f_start: float
    f_stop: float

    def __post_init__(self) -> None:
        if self.variation not in AC_VARIATIONS:
            raise NetlistError(
                f".ac variation must be one of {AC_VARIATIONS}, "
                f"got {self.variation!r}"
            )
        if self.n < 1:
            raise NetlistError(f".ac needs at least 1 point, got {self.n}")
        if self.f_start <= 0.0 or self.f_stop < self.f_start:
            raise NetlistError(
                f".ac needs 0 < fstart <= fstop, got "
                f"fstart={self.f_start:g}, fstop={self.f_stop:g}"
            )

    def frequencies(self) -> np.ndarray:
        """The sweep grid in hertz (endpoint included)."""
        if self.variation == "lin":
            return np.linspace(self.f_start, self.f_stop, self.n)
        base = 10.0 if self.variation == "dec" else 2.0
        spans = np.log(self.f_stop / self.f_start) / np.log(base)
        count = int(np.floor(self.n * spans + 1e-9)) + 1
        freqs = self.f_start * base ** (np.arange(count) / self.n)
        if freqs[-1] < self.f_stop * (1.0 - 1e-12):
            freqs = np.append(freqs, self.f_stop)
        return np.minimum(freqs, self.f_stop)

    def omegas(self) -> np.ndarray:
        """The sweep grid in angular frequency (rad/s)."""
        return 2.0 * np.pi * self.frequencies()


@dataclass
class AnalysisSpec:
    """Everything the dot-commands of one deck requested.

    Attributes
    ----------
    tran, ac:
        The transient / small-signal sweep cards (``None`` when the
        deck has none).
    ic:
        Initial node voltages from ``.ic v(node)=value`` entries.
    options:
        Engine-interpreted ``.options`` entries (keys from
        ``KNOWN_OPTIONS``, already typed: ``m``, ``windows`` and
        ``mor_order`` are ``int``, ``memory_rtol`` is ``float``, the
        rest strings).
    extra_options:
        Unrecognised ``.options`` entries, retained verbatim.
    """

    tran: TranCard | None = None
    ac: AcCard | None = None
    ic: dict[str, float] = field(default_factory=dict)
    options: dict[str, object] = field(default_factory=dict)
    extra_options: dict[str, str] = field(default_factory=dict)

    def set_option(self, key: str, value: str) -> None:
        """Record one ``.options`` entry, typing the known keys."""
        key = key.lower()
        if key not in KNOWN_OPTIONS:
            self.extra_options[key] = value
            return
        if key in ("m", "windows", "mor_order"):
            try:
                parsed: object = int(value)
            except ValueError:
                raise NetlistError(
                    f".options {key}= expects an integer, got {value!r}"
                ) from None
            if parsed < 1:  # type: ignore[operator]
                raise NetlistError(f".options {key}= must be >= 1, got {parsed}")
        elif key == "memory_rtol":
            try:
                parsed = float(value)
            except ValueError:
                raise NetlistError(
                    f".options memory_rtol= expects a number, got {value!r}"
                ) from None
            if not 0.0 < parsed < 1.0:  # type: ignore[operator]
                raise NetlistError(
                    f".options memory_rtol= must lie in (0, 1), got {parsed!r}"
                )
        else:
            parsed = str(value).lower()
        self.options[key] = parsed

    @property
    def basis(self) -> str | None:
        """Requested basis family (``.options basis=...``)."""
        return self.options.get("basis")

    @property
    def method(self) -> str | None:
        """Requested solver method (``.options method=...``).

        Stored verbatim; the front doors validate it against
        :data:`repro.core.dispatch.SIMULATION_METHODS` (native OPM
        routes, fractional zoo methods, one-shot baselines) with a
        did-you-mean diagnostic on typos.
        """
        return self.options.get("method")

    @property
    def m(self) -> int | None:
        """Requested basis-term count (``.options m=...``)."""
        return self.options.get("m")

    @property
    def windows(self) -> int | None:
        """Requested marching window count (``.options windows=...``)."""
        return self.options.get("windows")

    @property
    def backend(self) -> str | None:
        """Requested linear-algebra backend (``.options backend=...``)."""
        return self.options.get("backend")

    @property
    def reduce(self) -> str | None:
        """Requested model-order reduction (``.options reduce=auto``)."""
        return self.options.get("reduce")

    @property
    def mor_order(self) -> int | None:
        """Requested reduction moment count (``.options mor_order=...``)."""
        return self.options.get("mor_order")

    @property
    def memory(self) -> str | None:
        """Requested fractional-memory mode (``.options memory=exact|soe``)."""
        return self.options.get("memory")

    @property
    def memory_rtol(self) -> float | None:
        """Requested SOE certification tolerance (``.options memory_rtol=...``)."""
        return self.options.get("memory_rtol")

    @property
    def has_analyses(self) -> bool:
        """True when the deck requested at least one analysis."""
        return self.tran is not None or self.ac is not None

    def __repr__(self) -> str:
        parts = []
        if self.tran is not None:
            parts.append(f"tran={self.tran.tstop:g}s/{self.tran.steps}")
        if self.ac is not None:
            parts.append(
                f"ac={self.ac.variation} {self.ac.f_start:g}..{self.ac.f_stop:g}Hz"
            )
        if self.ic:
            parts.append(f"ic({len(self.ic)})")
        if self.options:
            parts.append(
                "options(" + ", ".join(f"{k}={v}" for k, v in self.options.items()) + ")"
            )
        return f"AnalysisSpec({', '.join(parts) or 'empty'})"

"""RC / RLC ladder generators -- classical interconnect workloads.

Ladders are the standard sanity workloads for transient engines: they
have known time constants, simple sparsity, and scale to arbitrary
size.  Used by the examples, the convergence tests and the complexity
benchmark (``O(n^beta m)`` fitting needs a family of growing ``n``).
"""

from __future__ import annotations

from .._validation import check_positive_float, check_positive_int
from .netlist import Netlist
from .sources import Waveform

__all__ = ["rc_ladder_netlist", "rlc_ladder_netlist"]


def rc_ladder_netlist(
    n_sections: int,
    *,
    r: float = 1.0,
    c: float = 1.0,
    drive_waveform: Waveform | None = None,
) -> Netlist:
    """Current-driven RC ladder: ``n_sections`` series-R / shunt-C cells.

    The drive current enters the first node on channel 0.  Node names
    are ``v1 .. v{n}``.

    Examples
    --------
    >>> nl = rc_ladder_netlist(3)
    >>> nl.summary()['resistors'], nl.summary()['capacitors']
    (3, 3)
    """
    n_sections = check_positive_int(n_sections, "n_sections")
    check_positive_float(r, "r")
    check_positive_float(c, "c")
    netlist = Netlist(f"rc ladder ({n_sections})")
    prev = "0"
    for k in range(1, n_sections + 1):
        node = f"v{k}"
        netlist.add_resistor(f"R{k}", prev, node, r)
        netlist.add_capacitor(f"C{k}", node, "0", c)
        prev = node
    # replace the first resistor's ground side with a current drive:
    # drive directly into v1 keeps the model strictly proper.
    netlist.add_current_source("Idrive", "0", "v1", drive_waveform, channel=0)
    return netlist


def rlc_ladder_netlist(
    n_sections: int,
    *,
    r: float = 1.0,
    l: float = 1e-3,
    c: float = 1.0,
    drive_waveform: Waveform | None = None,
) -> Netlist:
    """Current-driven RLC ladder (series R-L, shunt C per cell).

    The series inductors make the MNA model a DAE with
    ``2 n_sections`` states and give the NA model its second-order
    character -- a miniature version of the power-grid structure.

    Examples
    --------
    >>> nl = rlc_ladder_netlist(3)
    >>> nl.summary()['inductors']
    3
    """
    n_sections = check_positive_int(n_sections, "n_sections")
    check_positive_float(r, "r")
    check_positive_float(l, "l")
    check_positive_float(c, "c")
    netlist = Netlist(f"rlc ladder ({n_sections})")
    prev = "0"
    for k in range(1, n_sections + 1):
        mid = f"m{k}"
        node = f"v{k}"
        netlist.add_resistor(f"R{k}", prev, mid, r)
        netlist.add_inductor(f"L{k}", mid, node, l)
        netlist.add_capacitor(f"C{k}", node, "0", c)
        prev = node
    netlist.add_current_source("Idrive", "0", "v1", drive_waveform, channel=0)
    return netlist

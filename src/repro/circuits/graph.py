"""Circuit-graph analysis over a flattened netlist.

The middle stage of the netlist pipeline **parse -> graph-analyse ->
assemble**: a :class:`CircuitGraph` views a :class:`~repro.circuits.netlist.Netlist`
as an undirected multigraph (nodes = circuit nodes, edges = element
terminal pairs) and answers the structural questions that matter
*before* any matrix is stamped:

* **Lint** (:meth:`CircuitGraph.lint` / :meth:`CircuitGraph.check`):
  floating or dangling nodes and connected components with no
  conductive path to ground produce a structurally singular MNA pencil.
  Without the lint these defects surface as a
  :class:`~repro.errors.SingularPencilError` deep inside the solver;
  with it they fail fast, naming the offending nodes and elements and
  suggesting a fix.
* **Connected components** (:attr:`CircuitGraph.components`): electrically
  independent sub-circuits sharing one deck.  The engine splits a
  multi-component deck into per-component sub-netlists
  (:meth:`CircuitGraph.split`) and solves them in parallel --
  bit-identically to the monolithic solve, because the monolithic
  pencil is a permuted block-diagonal of the component pencils.
* **Degree statistics** (:meth:`CircuitGraph.degree` /
  :meth:`CircuitGraph.summary`): quick structural fingerprints for
  logging and benchmarks.

Edges and coupling rules
------------------------
Element terminals ``a``/``b`` contribute edges and node degree.  A VCCS
control pair ``c``/``d`` contributes *no* degree (a control-only node
has an all-zero KCL row and is reported as floating) but does merge
components: the transconductance stamp couples rows ``a``/``b`` with
columns ``c``/``d``, so splitting them apart would break the
block-diagonal structure.  A ``K`` mutual coupling likewise merges the
components of its two inductors.  Ground never merges components --
two sub-circuits that only share the reference node are independent.

A component is **grounded** when at least one element that can carry
the component's KCL current into the reference -- resistor, capacitor,
inductor, CPE, voltage source, or VCCS output -- has a grounded
terminal.  Current sources do not count: they stamp only the input
matrix, so a component tied to ground through nothing but current
sources keeps zero row-sums and stays singular at every frequency.

Examples
--------
>>> from repro.circuits import Netlist
>>> nl = Netlist.from_spice('''
... I1 0 a 1m
... R1 a 0 1k
... C1 a b 1u
... ''')
>>> graph = CircuitGraph(nl)
>>> [issue.code for issue in graph.lint()]
['floating-node']
>>> graph.lint()[0].nodes
('b',)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetlistError
from .components import (
    CPE,
    VCCS,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from .netlist import Netlist

__all__ = ["CircuitGraph", "GraphComponent", "LintIssue", "LintReport"]

#: Element classes whose grounded terminal pins a component's DC path
#: (current sources stamp only ``B`` and never pin).
_PINNING_TYPES = (Resistor, Capacitor, Inductor, CPE, VoltageSource, VCCS)


@dataclass(frozen=True)
class LintIssue:
    """One structural defect found by :meth:`CircuitGraph.lint`.

    ``code`` is machine-readable (``"floating-node"`` or
    ``"no-dc-path"``); ``nodes`` / ``elements`` name the offenders and
    ``hint`` suggests a fix.
    """

    code: str
    message: str
    nodes: tuple[str, ...] = ()
    elements: tuple[str, ...] = ()
    hint: str = ""

    def __str__(self) -> str:
        text = f"[{self.code}] {self.message}"
        return f"{text} (fix: {self.hint})" if self.hint else text


@dataclass(frozen=True)
class LintReport:
    """All lint issues of one deck, iterable and index-able.

    Falsy when the deck is clean, so ``if graph.lint(): ...`` reads
    naturally; :meth:`raise_if_issues` converts the report into a
    :class:`~repro.errors.NetlistError` naming every defect at once.
    """

    issues: tuple[LintIssue, ...] = ()
    title: str = ""

    def __bool__(self) -> bool:
        return bool(self.issues)

    def __len__(self) -> int:
        return len(self.issues)

    def __iter__(self):
        return iter(self.issues)

    def __getitem__(self, index: int) -> LintIssue:
        return self.issues[index]

    @property
    def codes(self) -> tuple[str, ...]:
        return tuple(issue.code for issue in self.issues)

    def raise_if_issues(self) -> None:
        """Raise a :class:`NetlistError` listing every issue (no-op when clean)."""
        if not self.issues:
            return
        deck = f" in {self.title!r}" if self.title else ""
        lines = "\n".join(f"  - {issue}" for issue in self.issues)
        raise NetlistError(
            f"circuit graph lint found {len(self.issues)} structural "
            f"defect(s){deck}:\n{lines}"
        )

    def as_dict(self) -> dict:
        """JSON-friendly form (what the service daemon's ``lint`` op returns)."""
        return {
            "ok": not self.issues,
            "issues": [
                {
                    "code": issue.code,
                    "message": issue.message,
                    "nodes": list(issue.nodes),
                    "elements": list(issue.elements),
                    "hint": issue.hint,
                }
                for issue in self.issues
            ],
        }


@dataclass(frozen=True)
class GraphComponent:
    """One connected component of the circuit graph.

    ``nodes`` are the member non-ground nodes in netlist order,
    ``elements`` the member element names (couplings included) in
    insertion order, and ``grounded`` whether any pinning element ties
    the component to the reference node.
    """

    index: int
    nodes: tuple[str, ...]
    elements: tuple[str, ...]
    grounded: bool


class CircuitGraph:
    """Connectivity view of a flattened :class:`Netlist` (see module docs).

    Examples
    --------
    >>> from repro.circuits import Netlist
    >>> nl = Netlist.from_spice('''
    ... I1 0 a 1m
    ... R1 a 0 1k
    ... I2 0 p 1m
    ... R2 p q 1k
    ... C2 q 0 1u
    ... ''')
    >>> graph = CircuitGraph(nl)
    >>> graph.n_components, [c.nodes for c in graph.components]
    (2, [('a',), ('p', 'q')])
    >>> graph.degree("q"), bool(graph.lint())
    (2, False)
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._degree: dict[str, int] = {node: 0 for node in netlist.nodes}
        self._attached: dict[str, list[str]] = {node: [] for node in netlist.nodes}
        parent: dict[str, str] = {node: node for node in netlist.nodes}

        def find(node: str) -> str:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:
                parent[node], node = root, parent[node]
            return root

        def union(a: str, b: str) -> None:
            parent[find(a)] = find(b)

        inductor_nodes: dict[str, tuple[str, ...]] = {}
        for element in netlist.elements:
            live = [t for t in (element.a, element.b) if not Netlist.is_ground(t)]
            for node in live:
                self._degree[node] += 1
                self._attached[node].append(element.name)
            if isinstance(element, VCCS):
                # control refs add no degree but do merge components
                live += [t for t in (element.c, element.d) if not Netlist.is_ground(t)]
            if isinstance(element, Inductor):
                inductor_nodes[element.name] = tuple(live)
            for node in live[1:]:
                union(live[0], node)
        for pair in netlist.couplings:
            joined = [
                node
                for name in (pair.inductor1, pair.inductor2)
                for node in inductor_nodes.get(name, ())
            ]
            for node in joined[1:]:
                union(joined[0], node)

        roots: dict[str, int] = {}
        comp_nodes: list[list[str]] = []
        for node in netlist.nodes:
            root = find(node)
            if root not in roots:
                roots[root] = len(comp_nodes)
                comp_nodes.append([])
            comp_nodes[roots[root]].append(node)
        self._component_of: dict[str, int] = {
            node: roots[find(node)] for node in netlist.nodes
        }

        comp_elements: list[list[str]] = [[] for _ in comp_nodes]
        comp_grounded = [False] * len(comp_nodes)
        self._elements_of: dict[str, int | None] = {}
        for element in netlist.elements:
            index = self._element_component(element)
            self._elements_of[element.name] = index
            if index is None:
                continue
            comp_elements[index].append(element.name)
            if isinstance(element, _PINNING_TYPES) and (
                Netlist.is_ground(element.a) or Netlist.is_ground(element.b)
            ):
                comp_grounded[index] = True
        for pair in netlist.couplings:
            nodes = inductor_nodes.get(pair.inductor1, ())
            index = self._component_of[nodes[0]] if nodes else None
            self._elements_of[pair.name] = index
            if index is not None:
                comp_elements[index].append(pair.name)

        self.components: tuple[GraphComponent, ...] = tuple(
            GraphComponent(
                index=i,
                nodes=tuple(nodes),
                elements=tuple(comp_elements[i]),
                grounded=comp_grounded[i],
            )
            for i, nodes in enumerate(comp_nodes)
        )

    def _element_component(self, element) -> int | None:
        for terminal in (element.a, element.b):
            if not Netlist.is_ground(terminal):
                return self._component_of[terminal]
        return None  # both terminals grounded: stamps nothing

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """Non-ground node names, netlist order."""
        return self.netlist.nodes

    @property
    def n_components(self) -> int:
        return len(self.components)

    @property
    def orphan_elements(self) -> tuple[str, ...]:
        """Elements belonging to no component (every terminal grounded).

        Such degenerate elements stamp nothing useful but may still own
        a state row (a voltage source), so the engine refuses to
        component-split a deck that has any.
        """
        return tuple(
            name for name, index in self._elements_of.items() if index is None
        )

    def degree(self, node: str) -> int:
        """Element-terminal attachments at ``node`` (control refs excluded)."""
        try:
            return self._degree[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def component_of(self, node: str) -> GraphComponent:
        """The connected component containing ``node``."""
        try:
            return self.components[self._component_of[node]]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def summary(self) -> dict:
        """Structural fingerprint: node/element/component counts and degrees."""
        degrees = sorted(self._degree.values())
        return {
            "nodes": len(self._degree),
            "elements": len(self.netlist.elements),
            "components": self.n_components,
            "grounded_components": sum(c.grounded for c in self.components),
            "min_degree": degrees[0] if degrees else 0,
            "max_degree": degrees[-1] if degrees else 0,
        }

    # ------------------------------------------------------------------
    # lint
    # ------------------------------------------------------------------
    def lint(self) -> LintReport:
        """Structural defects that would make the MNA pencil singular.

        * ``floating-node`` -- a non-ground node attached to fewer than
          two element terminals.  A node with no attachments (e.g. one
          referenced only by a VCCS control pair) has an all-zero KCL
          row; a dangling single attachment carries no current and is
          almost always a netlist typo.
        * ``no-dc-path`` -- a connected component with no pinning
          element to ground (see module docs), i.e. its block of the
          pencil has zero row-sums and is singular at every frequency.
        """
        issues: list[LintIssue] = []
        for node in self.netlist.nodes:
            degree = self._degree[node]
            if degree >= 2:
                continue
            attached = tuple(self._attached[node])
            if degree == 0:
                message = (
                    f"node {node!r} has no element terminal attached "
                    "(it appears only as a VCCS control reference)"
                )
                hint = "attach an element, or ground the control reference"
            else:
                message = (
                    f"node {node!r} dangles from a single element "
                    f"terminal ({attached[0]})"
                )
                hint = (
                    "connect a second element, or remove the dangling branch"
                )
            issues.append(
                LintIssue(
                    code="floating-node",
                    message=message,
                    nodes=(node,),
                    elements=attached,
                    hint=hint,
                )
            )
        for component in self.components:
            if component.grounded:
                continue
            issues.append(
                LintIssue(
                    code="no-dc-path",
                    message=(
                        f"component {component.index} "
                        f"(nodes {', '.join(component.nodes)}) has no "
                        "conductive path to ground"
                    ),
                    nodes=component.nodes,
                    elements=component.elements,
                    hint=(
                        "tie the component to node 0 through a resistor, "
                        "voltage source, or other conductive element "
                        "(current sources do not provide a DC path)"
                    ),
                )
            )
        return LintReport(issues=tuple(issues), title=self.netlist.title)

    def check(self) -> "CircuitGraph":
        """Raise :class:`NetlistError` naming every lint defect; else ``self``."""
        self.lint().raise_if_issues()
        return self

    # ------------------------------------------------------------------
    # component split
    # ------------------------------------------------------------------
    def split(self) -> tuple[Netlist, ...]:
        """Per-component sub-netlists, element order preserved.

        Each sub-netlist keeps its elements in original insertion order
        (so node ordering within a component matches the monolithic
        deck), re-numbers input channels compactly with the original
        waveforms and AC magnitudes attached, shares the parent's
        ``.tran``/``.ac``/``.options`` cards, and routes ``.ic``
        entries to the component that owns each node.  A single-
        component graph returns ``(netlist,)`` -- the parent itself.
        """
        if self.n_components <= 1:
            return (self.netlist,)
        from .cards import AnalysisSpec

        parent = self.netlist
        subs: list[Netlist] = []
        for component in self.components:
            sub = Netlist(
                f"{parent.title} [component {component.index}]"
                if parent.title
                else f"component {component.index}"
            )
            channel_map: dict[int, int] = {}
            for element in parent.elements:
                if self._elements_of[element.name] != component.index:
                    continue
                if isinstance(element, VCCS):
                    sub.add_vccs(
                        element.name,
                        element.a,
                        element.b,
                        element.c,
                        element.d,
                        element.gm,
                    )
                elif isinstance(element, (CurrentSource, VoltageSource)):
                    channel = channel_map.get(element.channel)
                    if channel is None:
                        channel = len(channel_map)
                        channel_map[element.channel] = channel
                        waveform = parent._waveforms.get(element.channel)
                        if waveform is not None:
                            sub._waveforms[channel] = waveform
                        magnitude = parent._ac_magnitudes.get(element.channel)
                        if magnitude is not None:
                            sub._ac_magnitudes[channel] = magnitude
                    adder = (
                        sub.add_current_source
                        if isinstance(element, CurrentSource)
                        else sub.add_voltage_source
                    )
                    adder(
                        element.name,
                        element.a,
                        element.b,
                        channel=channel,
                        scale=element.scale,
                    )
                else:
                    sub.add(element)  # frozen dataclass records can be shared
            for pair in parent.couplings:
                if self._elements_of[pair.name] != component.index:
                    continue
                sub.add_mutual(
                    pair.name, pair.inductor1, pair.inductor2, pair.coupling
                )
            analysis = parent.analysis
            sub.analysis = AnalysisSpec(
                tran=analysis.tran,
                ac=analysis.ac,
                ic={
                    node: value
                    for node, value in analysis.ic.items()
                    if node in sub._node_index
                },
                options=dict(analysis.options),
                extra_options=dict(analysis.extra_options),
            )
            subs.append(sub)
        return tuple(subs)

"""Modified nodal analysis: netlist -> descriptor / fractional / multi-term model.

State vector layout:

.. math::  x = (v_1 .. v_N, \\; i_{L,1} .. i_{L,M}, \\; i_{V,1} .. i_{V,K})

node voltages, inductor branch currents, voltage-source branch
currents.  Writing KCL at every node plus the branch equations of
inductors and voltage sources yields

.. math::

    \\underbrace{\\begin{bmatrix} C & & \\\\ & L & \\\\ & & 0 \\end{bmatrix}}_{E}
    \\dot{x} =
    \\underbrace{\\begin{bmatrix} -G & -A_L & -A_V \\\\ A_L^T & & \\\\
    A_V^T & & \\end{bmatrix}}_{A} x + B u ,

paper eq. (9) -- a DAE whenever voltage sources or capacitor-free
nodes make ``E`` singular.  Constant-phase elements add a fractional
block ``Q_alpha d^alpha v`` to the node equations; the assembler then
returns a :class:`~repro.core.lti.FractionalDescriptorSystem` (pure
CPE dynamics, paper eq. (19)) or a
:class:`~repro.core.lti.MultiTermSystem` (mixed orders).

Sign conventions (SPICE): branch quantities are defined from terminal
``a`` to terminal ``b``; a positive current-source value drives current
*through the source* from ``a`` to ``b`` (i.e. out of node ``a``'s KCL
and into node ``b``'s).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.lti import DescriptorSystem, FractionalDescriptorSystem, MultiTermSystem
from ..engine.backends import SPARSE_SIZE_THRESHOLD
from ..errors import NetlistError
from .components import (
    CPE,
    VCCS,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from .netlist import Netlist

__all__ = ["assemble_mna", "assemble_mna_restamp", "output_matrix"]

# SPARSE_SIZE_THRESHOLD is shared with the engine's backend selection:
# under ``sparse='auto'``, models below it are emitted dense (small
# dense LU beats SuperLU on factorisation *and* per-column overhead)
# while larger ladder/power-grid models stay ``scipy.sparse`` and are
# never densified downstream.


class _Stamper:
    """COO accumulator for one sparse matrix."""

    def __init__(self, rows: int, cols: int) -> None:
        self.shape = (rows, cols)
        self._r: list[int] = []
        self._c: list[int] = []
        self._v: list[float] = []

    def add(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self._r.append(row)
            self._c.append(col)
            self._v.append(value)

    def build(self) -> sp.csr_matrix:
        return sp.coo_matrix(
            (self._v, (self._r, self._c)), shape=self.shape
        ).tocsr()


def output_matrix(netlist: Netlist, nodes, size: int) -> np.ndarray:
    """Selector matrix picking the voltages of the named nodes.

    ``size`` is the full state dimension (node voltages first), so the
    same selector works for MNA and NA models.
    """
    nodes = list(nodes)
    C = np.zeros((len(nodes), size))
    for row, node in enumerate(nodes):
        C[row, netlist.node_index(node)] = 1.0
    return C


def assemble_mna(netlist: Netlist, outputs=None, *, sparse: str = "auto", ic=None):
    """Assemble the MNA model of a netlist.

    Parameters
    ----------
    netlist:
        The circuit; must contain at least one node.
    outputs:
        Optional list of node names whose voltages become the model
        outputs (default: all states).
    sparse:
        Storage of the emitted system matrices: ``'auto'`` (default)
        keeps ``scipy.sparse`` CSR for models with at least
        :data:`repro.engine.backends.SPARSE_SIZE_THRESHOLD` states and
        densifies smaller ones; ``'always'`` / ``'never'`` force the
        choice.
    ic:
        Optional initial node voltages, a mapping ``node -> volts``
        (what a ``.ic v(node)=value`` card declares -- pass
        ``netlist.analysis.ic`` to honour the deck).  Branch-current
        states start at zero.  Mixed-order circuits emit a
        :class:`MultiTermSystem`, which has no initial-state support;
        a non-trivial ``ic`` raises for them.

    Returns
    -------
    DescriptorSystem | FractionalDescriptorSystem | MultiTermSystem
        * all dynamic elements integer-order -> :class:`DescriptorSystem`
          (paper eq. (9); the section V-B "DAE model constructed using
          MNA by treating the currents flowing through inductors as
          state variables");
        * only CPEs of one common order -> :class:`FractionalDescriptorSystem`
          (paper eq. (19));
        * mixed orders -> :class:`MultiTermSystem`.

    Examples
    --------
    >>> from repro.circuits.netlist import Netlist
    >>> from repro.circuits.sources import Constant
    >>> nl = Netlist()
    >>> _ = nl.add_current_source("I1", "0", "n1", Constant(1e-3))
    >>> nl.add_resistor("R1", "n1", "0", 1e3)
    >>> nl.add_capacitor("C1", "n1", "0", 1e-6)
    >>> assemble_mna(nl).n_states
    1
    """
    if sparse not in ("auto", "always", "never"):
        raise NetlistError(
            f"sparse must be 'auto', 'always' or 'never', got {sparse!r}"
        )
    n_nodes = netlist.n_nodes
    if n_nodes == 0:
        raise NetlistError("netlist has no non-ground nodes")
    inductors = netlist.inductors
    vsources = netlist.voltage_sources
    n_l, n_v = len(inductors), len(vsources)
    size = n_nodes + n_l + n_v
    p = max(netlist.n_channels, 1)

    def vidx(node: str) -> int:
        return -1 if netlist.is_ground(node) else netlist.node_index(node)

    e1 = _Stamper(size, size)  # order-1 block: C on nodes, L on currents
    a = _Stamper(size, size)
    b = np.zeros((size, p))
    frac: dict[float, _Stamper] = {}
    l_row = {el.name: n_nodes + k for k, el in enumerate(inductors)}
    v_row = {el.name: n_nodes + n_l + k for k, el in enumerate(vsources)}

    for el in netlist.elements:
        ia, ib = vidx(el.a), vidx(el.b)
        if isinstance(el, Resistor):
            g = el.conductance
            # KCL: +g(va - vb) leaving a  ->  A gets -g pattern
            a.add(ia, ia, -g)
            a.add(ib, ib, -g)
            a.add(ia, ib, +g)
            a.add(ib, ia, +g)
        elif isinstance(el, Capacitor):
            c = el.capacitance
            e1.add(ia, ia, +c)
            e1.add(ib, ib, +c)
            e1.add(ia, ib, -c)
            e1.add(ib, ia, -c)
        elif isinstance(el, CPE):
            st = frac.setdefault(float(el.alpha), _Stamper(size, size))
            st.add(ia, ia, +el.q)
            st.add(ib, ib, +el.q)
            st.add(ia, ib, -el.q)
            st.add(ib, ia, -el.q)
        elif isinstance(el, Inductor):
            row = l_row[el.name]
            e1.add(row, row, el.inductance)
            # branch: L di/dt = va - vb
            a.add(row, ia, +1.0)
            a.add(row, ib, -1.0)
            # KCL: +i leaving a
            a.add(ia, row, -1.0)
            a.add(ib, row, +1.0)
        elif isinstance(el, VoltageSource):
            row = v_row[el.name]
            # branch: va - vb = scale * u  ->  0 = (va - vb) - scale u
            a.add(row, ia, +1.0)
            a.add(row, ib, -1.0)
            b[row, el.channel] = -el.scale
            # KCL: +i_V leaving a
            a.add(ia, row, -1.0)
            a.add(ib, row, +1.0)
        elif isinstance(el, VCCS):
            # i(a->b) = gm (v_c - v_d): leaves a, enters b
            ic, idx = vidx(el.c), vidx(el.d)
            a.add(ia, ic, -el.gm)
            a.add(ia, idx, +el.gm)
            a.add(ib, ic, +el.gm)
            a.add(ib, idx, -el.gm)
        elif isinstance(el, CurrentSource):
            # +scale*u leaves node a, enters node b
            if ia >= 0:
                b[ia, el.channel] -= el.scale
            if ib >= 0:
                b[ib, el.channel] += el.scale
        else:  # pragma: no cover - future element types
            raise NetlistError(f"element {el.name!r} has no MNA stamp")

    # mutual inductances: off-diagonal entries of the inductance matrix
    # (branch equations become L1 di1/dt + M di2/dt = v drop, etc.)
    if netlist.couplings:
        by_name = {el.name: el for el in inductors}
        for pair in netlist.couplings:
            l1 = by_name[pair.inductor1]
            l2 = by_name[pair.inductor2]
            mutual = pair.coupling * np.sqrt(l1.inductance * l2.inductance)
            e1.add(l_row[l1.name], l_row[l2.name], mutual)
            e1.add(l_row[l2.name], l_row[l1.name], mutual)

    C_out = None if outputs is None else output_matrix(netlist, outputs, size)
    x0 = None
    if ic:
        x0 = np.zeros(size)
        for node, volts in ic.items():
            x0[netlist.node_index(node)] = float(volts)
        if not np.any(x0):
            x0 = None
    keep_sparse = sparse == "always" or (
        sparse == "auto" and size >= SPARSE_SIZE_THRESHOLD
    )

    def finalise(matrix: sp.csr_matrix):
        return matrix if keep_sparse else matrix.toarray()

    A_sp = a.build()
    E1_sp = e1.build()
    A = finalise(A_sp)
    E1 = finalise(E1_sp)

    if not frac:
        return DescriptorSystem(E1, A, b, C=C_out, x0=x0)

    has_integer_dynamics = E1_sp.nnz > 0
    if not has_integer_dynamics and len(frac) == 1:
        ((alpha, stamper),) = frac.items()
        if alpha == 1.0:
            return DescriptorSystem(finalise(stamper.build()), A, b, C=C_out, x0=x0)
        return FractionalDescriptorSystem(
            alpha, finalise(stamper.build()), A, b, C=C_out, x0=x0
        )

    if x0 is not None:
        raise NetlistError(
            "initial conditions (.ic) are not supported for mixed-order "
            "circuits: the multi-term model has no initial-state handling; "
            "remove the .ic card or unify the dynamic element orders"
        )
    terms = [(0.0, -A)]
    if has_integer_dynamics:
        terms.append((1.0, E1))
    for alpha, stamper in sorted(frac.items()):
        matrix = finalise(stamper.build())
        if alpha == 1.0 and has_integer_dynamics:
            terms = [
                (o, (m + matrix) if o == 1.0 else m) for o, m in terms
            ]
        else:
            terms.append((alpha, matrix))
    return MultiTermSystem(terms, b, C=C_out)


def assemble_mna_restamp(netlist: Netlist, base: Netlist, outputs=None, **kwargs):
    """Assemble ``netlist`` as a mid-run re-stamp of a model built from ``base``.

    MNA state indices follow the netlist's node/branch *declaration
    order*, so two netlists produce state-compatible models only when
    their nodes, inductor branches, and voltage-source branches agree
    name-for-name in the same order (extra/removed R/C/CPE/source
    elements are fine -- that is exactly what switch closures and load
    hookups change).  This wrapper verifies that alignment before
    assembling, turning a silent state-vector permutation into a clear
    :class:`~repro.errors.NetlistError`.  Use it to build the
    :class:`~repro.engine.marching.Event` system for
    :meth:`repro.Simulator.march`.

    Parameters
    ----------
    netlist:
        The switched/modified circuit to assemble.
    base:
        The circuit the running model was assembled from.
    outputs, **kwargs:
        Forwarded to :func:`assemble_mna`.

    Examples
    --------
    >>> from repro.circuits.netlist import Netlist
    >>> base = Netlist.from_spice("I1 0 a 1m\\nR1 a 0 1k\\nC1 a 0 1u\\n")
    >>> closed = Netlist.from_spice("I1 0 a 1m\\nR1 a 0 1k\\nC1 a 0 1u\\nR2 a 0 500\\n")
    >>> assemble_mna_restamp(closed, base).n_states
    1
    """

    def names(elements) -> list[str]:
        return [el.name for el in elements]

    if netlist.nodes != base.nodes:
        raise NetlistError(
            "re-stamp netlist must declare the same nodes in the same order "
            f"as the base circuit; got {netlist.nodes} vs {base.nodes}"
        )
    if names(netlist.inductors) != names(base.inductors):
        raise NetlistError(
            "re-stamp netlist must keep the base circuit's inductor branches "
            "(their currents are states); got "
            f"{names(netlist.inductors)} vs {names(base.inductors)}"
        )
    if names(netlist.voltage_sources) != names(base.voltage_sources):
        raise NetlistError(
            "re-stamp netlist must keep the base circuit's voltage-source "
            "branches (their currents are states); got "
            f"{names(netlist.voltage_sources)} vs {names(base.voltage_sources)}"
        )
    if netlist.n_channels != base.n_channels:
        raise NetlistError(
            "re-stamp netlist must use the same number of input channels as "
            f"the base circuit, got {netlist.n_channels} vs {base.n_channels}"
        )
    return assemble_mna(netlist, outputs=outputs, **kwargs)

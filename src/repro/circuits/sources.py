"""Source waveforms for circuit simulation.

Vectorised callables with analytic time derivatives.  The derivative
matters because the nodal-analysis second-order model (section V-B)
arises from differentiating KCL once, which turns every current-source
input ``i(t)`` into ``di/dt`` -- see :mod:`repro.circuits.nodal`.

All waveforms map a 1-D time array to a same-shaped value array and
expose ``derivative()`` returning another waveform.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_float

__all__ = [
    "Waveform",
    "Constant",
    "Step",
    "Ramp",
    "Sine",
    "ExpPulse",
    "RaisedCosinePulse",
    "PiecewiseLinear",
    "Sum",
    "Scaled",
]


class Waveform:
    """Base class: a vectorised scalar function of time with a derivative."""

    def __call__(self, times) -> np.ndarray:
        raise NotImplementedError

    def derivative(self) -> "Waveform":
        """Return the waveform's time derivative as another waveform."""
        raise NotImplementedError(f"{type(self).__name__} has no analytic derivative")

    def __add__(self, other: "Waveform") -> "Waveform":
        return Sum([self, other])

    def __mul__(self, scale: float) -> "Waveform":
        return Scaled(self, float(scale))

    __rmul__ = __mul__


class Constant(Waveform):
    """Constant value ``level`` for all times.

    Examples
    --------
    >>> Constant(2.5)(np.array([0.0, 1.0]))
    array([2.5, 2.5])
    """

    def __init__(self, level: float) -> None:
        self.level = float(level)

    def __call__(self, times) -> np.ndarray:
        return np.full_like(np.asarray(times, dtype=float), self.level)

    def derivative(self) -> "Waveform":
        return Constant(0.0)

    def __repr__(self) -> str:
        return f"Constant({self.level:g})"


class Step(Waveform):
    """Ideal step: ``0`` before ``t0``, ``level`` after.

    An ideal step has no classical derivative; circuits exercising the
    NA model should use :class:`Ramp` or :class:`RaisedCosinePulse`
    instead (calling :meth:`derivative` raises).
    """

    def __init__(self, level: float = 1.0, t0: float = 0.0) -> None:
        self.level = float(level)
        self.t0 = float(t0)

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        return np.where(t >= self.t0, self.level, 0.0)

    def __repr__(self) -> str:
        return f"Step(level={self.level:g}, t0={self.t0:g})"


class Ramp(Waveform):
    """Saturating ramp: rises linearly from 0 to ``level`` over ``rise``.

    ``v(t) = level * clip((t - t0) / rise, 0, 1)`` -- the standard
    finite-rise-time step used for power-grid switching events.
    """

    def __init__(self, level: float = 1.0, rise: float = 1.0, t0: float = 0.0) -> None:
        self.level = float(level)
        self.rise = check_positive_float(rise, "rise")
        self.t0 = float(t0)

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        return self.level * np.clip((t - self.t0) / self.rise, 0.0, 1.0)

    def derivative(self) -> "Waveform":
        return _RampRate(self)

    def __repr__(self) -> str:
        return f"Ramp(level={self.level:g}, rise={self.rise:g}, t0={self.t0:g})"


class _RampRate(Waveform):
    """Derivative of :class:`Ramp`: a rectangular pulse."""

    def __init__(self, ramp: Ramp) -> None:
        self._ramp = ramp

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        inside = (t >= self._ramp.t0) & (t < self._ramp.t0 + self._ramp.rise)
        return np.where(inside, self._ramp.level / self._ramp.rise, 0.0)

    def __repr__(self) -> str:
        return f"derivative({self._ramp!r})"


class Sine(Waveform):
    """``amplitude * sin(2 pi freq (t - t0) + phase)`` (zero before ``t0``)."""

    def __init__(
        self, amplitude: float = 1.0, freq: float = 1.0, phase: float = 0.0, t0: float = 0.0
    ) -> None:
        self.amplitude = float(amplitude)
        self.freq = check_positive_float(freq, "freq")
        self.phase = float(phase)
        self.t0 = float(t0)

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        w = 2.0 * np.pi * self.freq
        return np.where(
            t >= self.t0, self.amplitude * np.sin(w * (t - self.t0) + self.phase), 0.0
        )

    def derivative(self) -> "Waveform":
        w = 2.0 * np.pi * self.freq
        return Sine(
            amplitude=self.amplitude * w,
            freq=self.freq,
            phase=self.phase + np.pi / 2.0,
            t0=self.t0,
        )

    def __repr__(self) -> str:
        return f"Sine(amplitude={self.amplitude:g}, freq={self.freq:g})"


class ExpPulse(Waveform):
    """Double-exponential pulse ``level * (e^{-t/tau_fall} - e^{-t/tau_rise})``.

    The classical SPICE-style surge shape; smooth for ``t > t0`` and
    zero before.  ``tau_rise < tau_fall`` is required.
    """

    def __init__(
        self, level: float = 1.0, tau_rise: float = 0.1, tau_fall: float = 1.0, t0: float = 0.0
    ) -> None:
        self.level = float(level)
        self.tau_rise = check_positive_float(tau_rise, "tau_rise")
        self.tau_fall = check_positive_float(tau_fall, "tau_fall")
        if self.tau_rise >= self.tau_fall:
            raise ValueError(
                f"tau_rise ({tau_rise}) must be smaller than tau_fall ({tau_fall})"
            )
        self.t0 = float(t0)

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float) - self.t0
        live = t >= 0.0
        t = np.where(live, t, 0.0)
        return np.where(
            live,
            self.level * (np.exp(-t / self.tau_fall) - np.exp(-t / self.tau_rise)),
            0.0,
        )

    def derivative(self) -> "Waveform":
        return _ExpPulseRate(self)

    def __repr__(self) -> str:
        return (
            f"ExpPulse(level={self.level:g}, tau_rise={self.tau_rise:g}, "
            f"tau_fall={self.tau_fall:g})"
        )


class _ExpPulseRate(Waveform):
    """Derivative of :class:`ExpPulse`."""

    def __init__(self, pulse: ExpPulse) -> None:
        self._p = pulse

    def __call__(self, times) -> np.ndarray:
        p = self._p
        t = np.asarray(times, dtype=float) - p.t0
        live = t >= 0.0
        t = np.where(live, t, 0.0)
        return np.where(
            live,
            p.level
            * (
                np.exp(-t / p.tau_rise) / p.tau_rise
                - np.exp(-t / p.tau_fall) / p.tau_fall
            ),
            0.0,
        )

    def __repr__(self) -> str:
        return f"derivative({self._p!r})"


class RaisedCosinePulse(Waveform):
    """Smooth compactly-supported pulse on ``[t0, t0 + width]``.

    ``level/2 * (1 - cos(2 pi (t - t0)/width))`` inside the support,
    zero outside; continuously differentiable everywhere -- the
    preferred load shape for NA models and FFT baselines (no spectral
    leakage from jump discontinuities).
    """

    def __init__(self, level: float = 1.0, width: float = 1.0, t0: float = 0.0) -> None:
        self.level = float(level)
        self.width = check_positive_float(width, "width")
        self.t0 = float(t0)

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float) - self.t0
        inside = (t >= 0.0) & (t <= self.width)
        phase = 2.0 * np.pi * np.where(inside, t, 0.0) / self.width
        return np.where(inside, 0.5 * self.level * (1.0 - np.cos(phase)), 0.0)

    def derivative(self) -> "Waveform":
        return _RaisedCosineRate(self)

    def __repr__(self) -> str:
        return f"RaisedCosinePulse(level={self.level:g}, width={self.width:g}, t0={self.t0:g})"


class _RaisedCosineRate(Waveform):
    """Derivative of :class:`RaisedCosinePulse`."""

    def __init__(self, pulse: RaisedCosinePulse) -> None:
        self._p = pulse

    def __call__(self, times) -> np.ndarray:
        p = self._p
        t = np.asarray(times, dtype=float) - p.t0
        inside = (t >= 0.0) & (t <= p.width)
        w = 2.0 * np.pi / p.width
        phase = w * np.where(inside, t, 0.0)
        return np.where(inside, 0.5 * p.level * w * np.sin(phase), 0.0)

    def __repr__(self) -> str:
        return f"derivative({self._p!r})"


class PiecewiseLinear(Waveform):
    """SPICE-style PWL waveform through ``(time, value)`` breakpoints.

    Constant extrapolation outside the breakpoint range; the derivative
    is the piecewise-constant slope (taken as the left-segment slope at
    breakpoints).
    """

    def __init__(self, times, values) -> None:
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.ndim != 1 or t.size < 2 or t.shape != v.shape:
            raise ValueError("PWL needs matching 1-D times/values with >= 2 points")
        if np.any(np.diff(t) <= 0.0):
            raise ValueError("PWL breakpoint times must be strictly increasing")
        self.times = t
        self.values = v

    def __call__(self, times) -> np.ndarray:
        return np.interp(np.asarray(times, dtype=float), self.times, self.values)

    def derivative(self) -> "Waveform":
        return _PWLRate(self)

    def __repr__(self) -> str:
        return f"PiecewiseLinear({self.times.size} points)"


class _PWLRate(Waveform):
    """Piecewise-constant slope of a PWL waveform."""

    def __init__(self, pwl: PiecewiseLinear) -> None:
        self._slopes = np.diff(pwl.values) / np.diff(pwl.times)
        self._times = pwl.times

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        idx = np.clip(np.searchsorted(self._times, t, side="right") - 1, 0, self._slopes.size - 1)
        out = self._slopes[idx]
        out = np.where((t < self._times[0]) | (t >= self._times[-1]), 0.0, out)
        return out

    def __repr__(self) -> str:
        return f"PWLRate({self._slopes.size} segments)"


class Sum(Waveform):
    """Pointwise sum of waveforms (built by ``wf1 + wf2``)."""

    def __init__(self, parts) -> None:
        self.parts = list(parts)
        if not self.parts:
            raise ValueError("Sum requires at least one waveform")

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        out = np.zeros_like(t)
        for part in self.parts:
            out = out + part(t)
        return out

    def derivative(self) -> "Waveform":
        return Sum([part.derivative() for part in self.parts])

    def __repr__(self) -> str:
        return f"Sum({self.parts!r})"


class Scaled(Waveform):
    """A waveform multiplied by a constant (built by ``scale * wf``)."""

    def __init__(self, inner: Waveform, scale: float) -> None:
        self.inner = inner
        self.scale = float(scale)

    def __call__(self, times) -> np.ndarray:
        return self.scale * self.inner(np.asarray(times, dtype=float))

    def derivative(self) -> "Waveform":
        return Scaled(self.inner.derivative(), self.scale)

    def __repr__(self) -> str:
        return f"{self.scale:g} * {self.inner!r}"

"""Source waveforms for circuit simulation.

Vectorised callables with analytic time derivatives.  The derivative
matters because the nodal-analysis second-order model (section V-B)
arises from differentiating KCL once, which turns every current-source
input ``i(t)`` into ``di/dt`` -- see :mod:`repro.circuits.nodal`.

All waveforms map a 1-D time array to a same-shaped value array and
expose ``derivative()`` returning another waveform.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_float

__all__ = [
    "Waveform",
    "Constant",
    "Step",
    "Ramp",
    "Sine",
    "ExpPulse",
    "RaisedCosinePulse",
    "PiecewiseLinear",
    "SpiceSin",
    "SpicePulse",
    "SpiceExp",
    "Sum",
    "Scaled",
]


class Waveform:
    """Base class: a vectorised scalar function of time with a derivative."""

    def __call__(self, times) -> np.ndarray:
        raise NotImplementedError

    def derivative(self) -> "Waveform":
        """Return the waveform's time derivative as another waveform."""
        raise NotImplementedError(f"{type(self).__name__} has no analytic derivative")

    def __add__(self, other: "Waveform") -> "Waveform":
        return Sum([self, other])

    def __mul__(self, scale: float) -> "Waveform":
        return Scaled(self, float(scale))

    __rmul__ = __mul__


class Constant(Waveform):
    """Constant value ``level`` for all times.

    Examples
    --------
    >>> Constant(2.5)(np.array([0.0, 1.0]))
    array([2.5, 2.5])
    """

    def __init__(self, level: float) -> None:
        self.level = float(level)

    def __call__(self, times) -> np.ndarray:
        return np.full_like(np.asarray(times, dtype=float), self.level)

    def derivative(self) -> "Waveform":
        return Constant(0.0)

    def __repr__(self) -> str:
        return f"Constant({self.level:g})"


class Step(Waveform):
    """Ideal step: ``0`` before ``t0``, ``level`` after.

    An ideal step has no classical derivative; circuits exercising the
    NA model should use :class:`Ramp` or :class:`RaisedCosinePulse`
    instead (calling :meth:`derivative` raises).
    """

    def __init__(self, level: float = 1.0, t0: float = 0.0) -> None:
        self.level = float(level)
        self.t0 = float(t0)

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        return np.where(t >= self.t0, self.level, 0.0)

    def __repr__(self) -> str:
        return f"Step(level={self.level:g}, t0={self.t0:g})"


class Ramp(Waveform):
    """Saturating ramp: rises linearly from 0 to ``level`` over ``rise``.

    ``v(t) = level * clip((t - t0) / rise, 0, 1)`` -- the standard
    finite-rise-time step used for power-grid switching events.
    """

    def __init__(self, level: float = 1.0, rise: float = 1.0, t0: float = 0.0) -> None:
        self.level = float(level)
        self.rise = check_positive_float(rise, "rise")
        self.t0 = float(t0)

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        return self.level * np.clip((t - self.t0) / self.rise, 0.0, 1.0)

    def derivative(self) -> "Waveform":
        return _RampRate(self)

    def __repr__(self) -> str:
        return f"Ramp(level={self.level:g}, rise={self.rise:g}, t0={self.t0:g})"


class _RampRate(Waveform):
    """Derivative of :class:`Ramp`: a rectangular pulse."""

    def __init__(self, ramp: Ramp) -> None:
        self._ramp = ramp

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        inside = (t >= self._ramp.t0) & (t < self._ramp.t0 + self._ramp.rise)
        return np.where(inside, self._ramp.level / self._ramp.rise, 0.0)

    def __repr__(self) -> str:
        return f"derivative({self._ramp!r})"


class Sine(Waveform):
    """``amplitude * sin(2 pi freq (t - t0) + phase)`` (zero before ``t0``)."""

    def __init__(
        self, amplitude: float = 1.0, freq: float = 1.0, phase: float = 0.0, t0: float = 0.0
    ) -> None:
        self.amplitude = float(amplitude)
        self.freq = check_positive_float(freq, "freq")
        self.phase = float(phase)
        self.t0 = float(t0)

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        w = 2.0 * np.pi * self.freq
        return np.where(
            t >= self.t0, self.amplitude * np.sin(w * (t - self.t0) + self.phase), 0.0
        )

    def derivative(self) -> "Waveform":
        w = 2.0 * np.pi * self.freq
        return Sine(
            amplitude=self.amplitude * w,
            freq=self.freq,
            phase=self.phase + np.pi / 2.0,
            t0=self.t0,
        )

    def __repr__(self) -> str:
        return f"Sine(amplitude={self.amplitude:g}, freq={self.freq:g})"


class ExpPulse(Waveform):
    """Double-exponential pulse ``level * (e^{-t/tau_fall} - e^{-t/tau_rise})``.

    The classical SPICE-style surge shape; smooth for ``t > t0`` and
    zero before.  ``tau_rise < tau_fall`` is required.
    """

    def __init__(
        self, level: float = 1.0, tau_rise: float = 0.1, tau_fall: float = 1.0, t0: float = 0.0
    ) -> None:
        self.level = float(level)
        self.tau_rise = check_positive_float(tau_rise, "tau_rise")
        self.tau_fall = check_positive_float(tau_fall, "tau_fall")
        if self.tau_rise >= self.tau_fall:
            raise ValueError(
                f"tau_rise ({tau_rise}) must be smaller than tau_fall ({tau_fall})"
            )
        self.t0 = float(t0)

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float) - self.t0
        live = t >= 0.0
        t = np.where(live, t, 0.0)
        return np.where(
            live,
            self.level * (np.exp(-t / self.tau_fall) - np.exp(-t / self.tau_rise)),
            0.0,
        )

    def derivative(self) -> "Waveform":
        return _ExpPulseRate(self)

    def __repr__(self) -> str:
        return (
            f"ExpPulse(level={self.level:g}, tau_rise={self.tau_rise:g}, "
            f"tau_fall={self.tau_fall:g})"
        )


class _ExpPulseRate(Waveform):
    """Derivative of :class:`ExpPulse`."""

    def __init__(self, pulse: ExpPulse) -> None:
        self._p = pulse

    def __call__(self, times) -> np.ndarray:
        p = self._p
        t = np.asarray(times, dtype=float) - p.t0
        live = t >= 0.0
        t = np.where(live, t, 0.0)
        return np.where(
            live,
            p.level
            * (
                np.exp(-t / p.tau_rise) / p.tau_rise
                - np.exp(-t / p.tau_fall) / p.tau_fall
            ),
            0.0,
        )

    def __repr__(self) -> str:
        return f"derivative({self._p!r})"


class RaisedCosinePulse(Waveform):
    """Smooth compactly-supported pulse on ``[t0, t0 + width]``.

    ``level/2 * (1 - cos(2 pi (t - t0)/width))`` inside the support,
    zero outside; continuously differentiable everywhere -- the
    preferred load shape for NA models and FFT baselines (no spectral
    leakage from jump discontinuities).
    """

    def __init__(self, level: float = 1.0, width: float = 1.0, t0: float = 0.0) -> None:
        self.level = float(level)
        self.width = check_positive_float(width, "width")
        self.t0 = float(t0)

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float) - self.t0
        inside = (t >= 0.0) & (t <= self.width)
        phase = 2.0 * np.pi * np.where(inside, t, 0.0) / self.width
        return np.where(inside, 0.5 * self.level * (1.0 - np.cos(phase)), 0.0)

    def derivative(self) -> "Waveform":
        return _RaisedCosineRate(self)

    def __repr__(self) -> str:
        return f"RaisedCosinePulse(level={self.level:g}, width={self.width:g}, t0={self.t0:g})"


class _RaisedCosineRate(Waveform):
    """Derivative of :class:`RaisedCosinePulse`."""

    def __init__(self, pulse: RaisedCosinePulse) -> None:
        self._p = pulse

    def __call__(self, times) -> np.ndarray:
        p = self._p
        t = np.asarray(times, dtype=float) - p.t0
        inside = (t >= 0.0) & (t <= p.width)
        w = 2.0 * np.pi / p.width
        phase = w * np.where(inside, t, 0.0)
        return np.where(inside, 0.5 * p.level * w * np.sin(phase), 0.0)

    def __repr__(self) -> str:
        return f"derivative({self._p!r})"


class PiecewiseLinear(Waveform):
    """SPICE-style PWL waveform through ``(time, value)`` breakpoints.

    Constant extrapolation outside the breakpoint range; the derivative
    is the piecewise-constant slope (taken as the left-segment slope at
    breakpoints).
    """

    def __init__(self, times, values) -> None:
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.ndim != 1 or t.size < 2 or t.shape != v.shape:
            raise ValueError("PWL needs matching 1-D times/values with >= 2 points")
        if np.any(np.diff(t) <= 0.0):
            raise ValueError("PWL breakpoint times must be strictly increasing")
        self.times = t
        self.values = v

    def __call__(self, times) -> np.ndarray:
        return np.interp(np.asarray(times, dtype=float), self.times, self.values)

    def derivative(self) -> "Waveform":
        return _PWLRate(self)

    def __repr__(self) -> str:
        return f"PiecewiseLinear({self.times.size} points)"


class _PWLRate(Waveform):
    """Piecewise-constant slope of a PWL waveform."""

    def __init__(self, pwl: PiecewiseLinear) -> None:
        self._slopes = np.diff(pwl.values) / np.diff(pwl.times)
        self._times = pwl.times

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        idx = np.clip(np.searchsorted(self._times, t, side="right") - 1, 0, self._slopes.size - 1)
        out = self._slopes[idx]
        out = np.where((t < self._times[0]) | (t >= self._times[-1]), 0.0, out)
        return out

    def __repr__(self) -> str:
        return f"PWLRate({self._slopes.size} segments)"


class SpiceSin(Waveform):
    """SPICE ``SIN(VO VA FREQ TD THETA PHASE)`` transient source.

    Standard SPICE semantics: constant ``vo + va sin(phase)`` before the
    delay ``td``, then a (possibly damped) sine

    .. math::

        v(t) = v_o + v_a e^{-(t - t_d)\\theta}
               \\sin(2\\pi f (t - t_d) + \\varphi),

    with ``phase`` given in degrees as in SPICE decks.

    Examples
    --------
    >>> wf = SpiceSin(0.0, 1.0, 0.25)           # 0.25 Hz, peak at t=1
    >>> np.round(wf(np.array([0.0, 1.0])), 12)
    array([0., 1.])
    """

    def __init__(
        self,
        vo: float = 0.0,
        va: float = 1.0,
        freq: float = 1.0,
        td: float = 0.0,
        theta: float = 0.0,
        phase: float = 0.0,
    ) -> None:
        self.vo = float(vo)
        self.va = float(va)
        self.freq = check_positive_float(freq, "freq")
        self.td = float(td)
        self.theta = float(theta)
        self.phase = float(phase)

    @property
    def _phase_rad(self) -> float:
        return np.pi * self.phase / 180.0

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float) - self.td
        live = t >= 0.0
        tau = np.where(live, t, 0.0)
        w = 2.0 * np.pi * self.freq
        wave = self.va * np.exp(-tau * self.theta) * np.sin(w * tau + self._phase_rad)
        hold = self.va * np.sin(self._phase_rad)
        return self.vo + np.where(live, wave, hold)

    def derivative(self) -> "Waveform":
        return _SpiceSinRate(self)

    def __repr__(self) -> str:
        return (
            f"SpiceSin(vo={self.vo:g}, va={self.va:g}, freq={self.freq:g}, "
            f"td={self.td:g}, theta={self.theta:g}, phase={self.phase:g})"
        )


class _SpiceSinRate(Waveform):
    """Derivative of :class:`SpiceSin` (zero before the delay)."""

    def __init__(self, sin: SpiceSin) -> None:
        self._s = sin

    def __call__(self, times) -> np.ndarray:
        s = self._s
        t = np.asarray(times, dtype=float) - s.td
        live = t >= 0.0
        tau = np.where(live, t, 0.0)
        w = 2.0 * np.pi * s.freq
        arg = w * tau + s._phase_rad
        rate = (
            s.va
            * np.exp(-tau * s.theta)
            * (w * np.cos(arg) - s.theta * np.sin(arg))
        )
        return np.where(live, rate, 0.0)

    def __repr__(self) -> str:
        return f"derivative({self._s!r})"


class SpicePulse(Waveform):
    """SPICE ``PULSE(V1 V2 TD TR TF PW PER)`` trapezoidal pulse train.

    Holds ``v1`` until the delay ``td``, rises linearly to ``v2`` over
    ``tr``, holds for ``pw``, falls back over ``tf``, and -- when a
    finite period ``per`` is given -- repeats.  ``pw``/``per`` default
    to infinity (a single pulse that never returns / never repeats).

    Ideal edges (``tr == 0`` or ``tf == 0``) are accepted for MNA
    transient runs; like :class:`Step`, they have no classical
    derivative, so :meth:`derivative` raises for them.

    Examples
    --------
    >>> wf = SpicePulse(0.0, 1.0, td=1.0, tr=1.0, tf=1.0, pw=1.0, per=8.0)
    >>> wf(np.array([0.5, 1.5, 2.5, 3.5, 10.5]))
    array([0. , 0.5, 1. , 0.5, 1. ])
    """

    def __init__(
        self,
        v1: float = 0.0,
        v2: float = 1.0,
        td: float = 0.0,
        tr: float = 0.0,
        tf: float = 0.0,
        pw: float = np.inf,
        per: float = np.inf,
    ) -> None:
        self.v1 = float(v1)
        self.v2 = float(v2)
        self.td = float(td)
        self.tr = float(tr)
        self.tf = float(tf)
        self.pw = float(pw)
        self.per = float(per)
        for label, value in (("tr", self.tr), ("tf", self.tf), ("pw", self.pw)):
            if value < 0.0:
                raise ValueError(f"{label} must be non-negative, got {value:g}")
        if self.per <= 0.0:
            raise ValueError(f"per must be positive, got {self.per:g}")
        if np.isfinite(self.per) and self.per < self.tr + self.pw + self.tf:
            raise ValueError(
                f"per ({self.per:g}) must cover tr + pw + tf "
                f"({self.tr + self.pw + self.tf:g})"
            )

    def _fold(self, times) -> np.ndarray:
        """Time since the start of the active cycle (negative before td)."""
        tau = np.asarray(times, dtype=float) - self.td
        if np.isfinite(self.per):
            tau = np.where(tau >= 0.0, np.mod(tau, self.per), tau)
        return tau

    def __call__(self, times) -> np.ndarray:
        tau = self._fold(times)
        rise_end = self.tr
        high_end = self.tr + self.pw
        fall_end = high_end + self.tf
        with np.errstate(invalid="ignore"):
            rising = (
                self.v1 + (self.v2 - self.v1) * tau / self.tr
                if self.tr > 0.0
                else np.full_like(tau, self.v2)
            )
            falling = (
                self.v2 + (self.v1 - self.v2) * (tau - high_end) / self.tf
                if self.tf > 0.0
                else np.full_like(tau, self.v1)
            )
        return np.select(
            [tau < 0.0, tau < rise_end, tau <= high_end, tau < fall_end],
            [self.v1, rising, self.v2, falling],
            default=self.v1,
        )

    def derivative(self) -> "Waveform":
        if self.tr == 0.0 or self.tf == 0.0:
            raise NotImplementedError(
                "an ideal-edge PULSE (tr=0 or tf=0) has no classical "
                "derivative; give the edges a finite rise/fall time"
            )
        return _SpicePulseRate(self)

    def __repr__(self) -> str:
        return (
            f"SpicePulse(v1={self.v1:g}, v2={self.v2:g}, td={self.td:g}, "
            f"tr={self.tr:g}, tf={self.tf:g}, pw={self.pw:g}, per={self.per:g})"
        )


class _SpicePulseRate(Waveform):
    """Derivative of :class:`SpicePulse`: rectangular edge-rate pulses."""

    def __init__(self, pulse: SpicePulse) -> None:
        self._p = pulse

    def __call__(self, times) -> np.ndarray:
        p = self._p
        tau = p._fold(times)
        high_end = p.tr + p.pw
        fall_end = high_end + p.tf
        up = (p.v2 - p.v1) / p.tr
        down = (p.v1 - p.v2) / p.tf
        return np.select(
            [tau < 0.0, tau < p.tr, tau <= high_end, tau < fall_end],
            [0.0, up, 0.0, down],
            default=0.0,
        )

    def __repr__(self) -> str:
        return f"derivative({self._p!r})"


class SpiceExp(Waveform):
    """SPICE ``EXP(V1 V2 TD1 TAU1 TD2 TAU2)`` double-exponential edge.

    Holds ``v1`` until ``td1``, then relaxes toward ``v2`` with time
    constant ``tau1``; from ``td2`` a second exponential with constant
    ``tau2`` pulls the value back toward ``v1``:

    .. math::

        v(t) = v_1 + (v_2 - v_1)\\,(1 - e^{-(t - t_{d1})/\\tau_1})
             + (v_1 - v_2)\\,(1 - e^{-(t - t_{d2})/\\tau_2}) .

    ``td2`` defaults to ``td1 + tau1``; ``tau2`` defaults to ``tau1``.

    Examples
    --------
    >>> wf = SpiceExp(0.0, 1.0, td1=0.0, tau1=1.0, td2=10.0, tau2=1.0)
    >>> bool(abs(wf(np.array([1.0]))[0] - (1 - np.exp(-1))) < 1e-12)
    True
    """

    def __init__(
        self,
        v1: float = 0.0,
        v2: float = 1.0,
        td1: float = 0.0,
        tau1: float = 1.0,
        td2: float | None = None,
        tau2: float | None = None,
    ) -> None:
        self.v1 = float(v1)
        self.v2 = float(v2)
        self.td1 = float(td1)
        self.tau1 = check_positive_float(tau1, "tau1")
        self.td2 = self.td1 + self.tau1 if td2 is None else float(td2)
        self.tau2 = self.tau1 if tau2 is None else check_positive_float(tau2, "tau2")
        if self.td2 < self.td1:
            raise ValueError(
                f"td2 ({self.td2:g}) must not precede td1 ({self.td1:g})"
            )

    def _edges(self, times) -> tuple[np.ndarray, np.ndarray]:
        t = np.asarray(times, dtype=float)
        t1 = np.maximum(t - self.td1, 0.0)
        t2 = np.maximum(t - self.td2, 0.0)
        return t1, t2

    def __call__(self, times) -> np.ndarray:
        t1, t2 = self._edges(times)
        swing = self.v2 - self.v1
        rise = swing * (1.0 - np.exp(-t1 / self.tau1)) * (t1 > 0.0)
        fall = -swing * (1.0 - np.exp(-t2 / self.tau2)) * (t2 > 0.0)
        return self.v1 + rise + fall

    def derivative(self) -> "Waveform":
        return _SpiceExpRate(self)

    def __repr__(self) -> str:
        return (
            f"SpiceExp(v1={self.v1:g}, v2={self.v2:g}, td1={self.td1:g}, "
            f"tau1={self.tau1:g}, td2={self.td2:g}, tau2={self.tau2:g})"
        )


class _SpiceExpRate(Waveform):
    """Derivative of :class:`SpiceExp`."""

    def __init__(self, pulse: SpiceExp) -> None:
        self._p = pulse

    def __call__(self, times) -> np.ndarray:
        p = self._p
        t1, t2 = p._edges(times)
        swing = p.v2 - p.v1
        rise = swing / p.tau1 * np.exp(-t1 / p.tau1) * (t1 > 0.0)
        fall = -swing / p.tau2 * np.exp(-t2 / p.tau2) * (t2 > 0.0)
        return rise + fall

    def __repr__(self) -> str:
        return f"derivative({self._p!r})"


class Sum(Waveform):
    """Pointwise sum of waveforms (built by ``wf1 + wf2``)."""

    def __init__(self, parts) -> None:
        self.parts = list(parts)
        if not self.parts:
            raise ValueError("Sum requires at least one waveform")

    def __call__(self, times) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        out = np.zeros_like(t)
        for part in self.parts:
            out = out + part(t)
        return out

    def derivative(self) -> "Waveform":
        return Sum([part.derivative() for part in self.parts])

    def __repr__(self) -> str:
        return f"Sum({self.parts!r})"


class Scaled(Waveform):
    """A waveform multiplied by a constant (built by ``scale * wf``)."""

    def __init__(self, inner: Waveform, scale: float) -> None:
        self.inner = inner
        self.scale = float(scale)

    def __call__(self, times) -> np.ndarray:
        return self.scale * self.inner(np.asarray(times, dtype=float))

    def derivative(self) -> "Waveform":
        return Scaled(self.inner.derivative(), self.scale)

    def __repr__(self) -> str:
        return f"{self.scale:g} * {self.inner!r}"

"""Netlist container and SPICE-subset parser.

A :class:`Netlist` is an ordered collection of circuit elements plus
the bookkeeping needed for matrix assembly: node numbering (ground
excluded), input-channel allocation for sources, and attached source
waveforms.  Assembly into system models is performed by
:func:`repro.circuits.mna.assemble_mna` (first-order DAE / multi-term
fractional) and :func:`repro.circuits.nodal.assemble_na` (second-order
NA model).

The parser accepts the classical SPICE card subset sufficient for the
paper's workloads::

    * comment
    R<name> <node+> <node-> <resistance>
    C<name> <node+> <node-> <capacitance>
    L<name> <node+> <node-> <inductance>
    K<name> <L1> <L2> <k>                   (inductive coupling)
    I<name> <node+> <node-> <source-spec>
    V<name> <node+> <node-> <source-spec>
    G<name> <node+> <node-> <ctrl+> <ctrl-> <gm>   (VCCS)
    P<name> <node+> <node-> <q> <alpha>     (CPE, extension card)

Source specs carry the standard transient cards plus small-signal
magnitudes for ``.ac``::

    V1 in 0 5                       (bare DC value)
    V1 in 0 DC 5 AC 1
    V1 in 0 SIN(VO VA FREQ [TD [THETA [PHASE]]])
    I1 0 n1 PULSE(V1 V2 [TD [TR [TF [PW [PER]]]]])
    V1 in 0 EXP(V1 V2 TD1 TAU1 [TD2 [TAU2]])
    V1 in 0 PWL(T1 V1 T2 V2 ...)

(``SIN``'s ``FREQ`` and ``EXP``'s ``TD1``/``TAU1`` are required: SPICE
defaults them from the ``.tran`` card, which a waveform built at parse
time cannot see.  Omitted ``PULSE`` edges mean *ideal* edges -- SPICE
would default ``TR``/``TF`` to the print step -- and ``PW``/``PER``
default to a single never-returning pulse.)

Hierarchical decks are supported through subcircuit definitions and
instances, flattened at parse time::

    .subckt <name> <port> [<port> ...] [param=value ...]
       <element / X cards>
    .ends [<name>]
    X<name> <node> [<node> ...] <subckt> [param=value ...]

Instances expand recursively (an ``X`` card inside a ``.subckt`` body
instantiates nested subcircuits); internal nodes and element names are
prefixed deterministically with the lower-cased instance name
(``xfilt.n1``, ``xfilt.R1``, and ``xa.xb.n1`` when nested), ports map
to the connecting nodes, and ground aliases normalise to ``0`` before
flattening so a ``gnd``/``vss`` inside a subcircuit body never becomes
a private internal node.  ``{param}`` references in value fields are
substituted from the definition defaults, overridden per instance.
Duplicate element names and duplicate ``.subckt`` definitions raise a
:class:`~repro.errors.NetlistError` naming both source lines.

Dot-commands ``.tran`` / ``.ac`` / ``.ic`` / ``.options`` are parsed
into a typed :class:`~repro.circuits.cards.AnalysisSpec` (see that
module) available as :attr:`Netlist.analysis`; other dot-cards are
ignored.  Lines starting with ``+`` continue the previous card;
``;`` begins an inline comment anywhere, ``$`` only at line start or
after whitespace (so hierarchical ``$`` node names survive).

Numeric tokens take the usual engineering suffixes (``k``, ``meg``,
``mil``, ``m``, ``u``, ``n``, ``p``, ``f``, ``t``, ``g``); trailing
unit text is ignored (``1kOhm``, ``10uF``).  Node ``0`` (or ``gnd`` /
``vss`` / ``ground`` in any letter case) is ground.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable

import numpy as np

from ..errors import NetlistError
from .cards import AnalysisSpec, AcCard, TranCard
from .components import (
    CPE,
    VCCS,
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from .sources import (
    Constant,
    PiecewiseLinear,
    SpiceExp,
    SpicePulse,
    SpiceSin,
    Waveform,
)

__all__ = ["Netlist", "GROUND_NAMES", "parse_value", "parse_source_spec"]

#: Node names treated as the ground reference (compared case-insensitively).
GROUND_NAMES = ("0", "gnd", "vss", "ground")

_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "mil": 25.4e-6,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

# Number, then an optional scale suffix (``meg``/``mil`` before the
# single letters, so ``1meg`` is not read as milli + "eg"), then any
# trailing unit text (``Ohm``, ``F``, ``H``, ``Hz``, ...), which SPICE
# ignores.
_VALUE_RE = re.compile(
    r"^([-+]?(?:[0-9]+\.?[0-9]*|\.[0-9]+)(?:e[-+]?[0-9]+)?)"
    r"(meg|mil|[tgkmunpf])?[a-z]*$"
)


def parse_value(token: str) -> float:
    """Parse a SPICE numeric token with engineering suffix.

    Trailing alphabetic unit text after the suffix is ignored, and a
    bare trailing decimal point is accepted, per SPICE semantics.

    >>> parse_value("1k"), round(parse_value("2.5u"), 12), parse_value("3meg")
    (1000.0, 2.5e-06, 3000000.0)
    >>> parse_value("3."), parse_value("1kOhm"), round(parse_value("10uF"), 12)
    (3.0, 1000.0, 1e-05)
    >>> parse_value("5mil") == 5 * 25.4e-6
    True
    """
    match = _VALUE_RE.match(token.strip().lower())
    if not match:
        raise NetlistError(f"cannot parse numeric value {token!r}")
    base = float(match.group(1))
    suffix = match.group(2)
    return base * _SUFFIXES[suffix] if suffix else base


def _is_value(token: str) -> bool:
    """True when ``token`` parses as a SPICE numeric value."""
    return _VALUE_RE.match(token.strip().lower()) is not None


# ----------------------------------------------------------------------
# source-spec parsing (the value fields of V / I cards)
# ----------------------------------------------------------------------
_SOURCE_FN_RE = re.compile(r"\b(sin|pulse|exp|pwl)\s*\(([^()]*)\)", re.IGNORECASE)

#: argument counts accepted by each transient function.  SPICE defaults
#: SIN's FREQ and EXP's TAU1 from the .tran card (1/tstop, tstep) --
#: values a waveform built at parse time cannot know -- so those
#: arguments are required here rather than silently mis-defaulted.
_SOURCE_FN_ARITY = {
    "sin": (3, 6),
    "pulse": (2, 7),
    "exp": (4, 6),
    "pwl": (4, None),
}


def _build_transient(fn: str, args: list[float], name: str) -> Waveform:
    """Instantiate the waveform of one transient source function."""
    lo, hi = _SOURCE_FN_ARITY[fn]
    if len(args) < lo or (hi is not None and len(args) > hi):
        bound = f"{lo}" if hi is None else f"{lo}..{hi}"
        raise NetlistError(
            f"source {name!r}: {fn.upper()}() takes {bound} arguments, "
            f"got {len(args)}"
        )
    try:
        if fn == "sin":
            return SpiceSin(*args)
        if fn == "pulse":
            return SpicePulse(*args)
        if fn == "exp":
            return SpiceExp(*args)
        # pwl: alternating time/value pairs
        if len(args) % 2:
            raise ValueError("PWL() takes time/value pairs")
        return PiecewiseLinear(args[0::2], args[1::2])
    except ValueError as exc:
        raise NetlistError(f"source {name!r}: {exc}") from exc


def parse_source_spec(spec: str, name: str = "?") -> tuple[Waveform, complex | None]:
    """Parse the value fields of a ``V``/``I`` card.

    Returns ``(waveform, ac)`` where ``ac`` is the complex small-signal
    magnitude from an ``AC <mag> [<phase-degrees>]`` entry (``None``
    when the card has none).  The waveform is the transient function if
    present, otherwise the constant DC value (``0`` if only an AC
    magnitude is given).

    Examples
    --------
    >>> wf, ac = parse_source_spec("DC 2 AC 1", "V1")
    >>> wf, ac
    (Constant(2), (1+0j))
    >>> parse_source_spec("SIN(0 5 1k)", "V1")[0]
    SpiceSin(vo=0, va=5, freq=1000, td=0, theta=0, phase=0)
    """
    text = spec.strip()
    waveform: Waveform | None = None
    match = _SOURCE_FN_RE.search(text)
    if match:
        fn = match.group(1).lower()
        arg_tokens = [t for t in re.split(r"[\s,]+", match.group(2).strip()) if t]
        args = [parse_value(tok) for tok in arg_tokens]
        waveform = _build_transient(fn, args, name)
        text = (text[: match.start()] + " " + text[match.end() :]).strip()
    if "(" in text or ")" in text:
        raise NetlistError(
            f"source {name!r}: cannot parse source spec {spec!r} "
            "(expected one SIN/PULSE/EXP/PWL(...) function)"
        )
    tokens = [t for t in re.split(r"[\s,]+", text) if t]
    dc: float | None = None
    ac: complex | None = None
    i = 0
    while i < len(tokens):
        key = tokens[i].lower()
        if key == "dc":
            if i + 1 >= len(tokens) or dc is not None:
                raise NetlistError(f"source {name!r}: bad DC entry in {spec!r}")
            dc = parse_value(tokens[i + 1])
            i += 2
        elif key == "ac":
            if i + 1 >= len(tokens) or ac is not None:
                raise NetlistError(f"source {name!r}: bad AC entry in {spec!r}")
            magnitude = parse_value(tokens[i + 1])
            i += 2
            phase = 0.0
            if i < len(tokens) and _is_value(tokens[i]):
                phase = parse_value(tokens[i])
                i += 1
            ac = complex(magnitude * np.exp(1j * np.pi * phase / 180.0))
        elif dc is None and _is_value(key):
            # a bare value is the DC operating level; the classic form
            # "V1 in 0 0 SIN(...)" carries one alongside the transient
            # function (which then drives the simulation)
            dc = parse_value(tokens[i])
            i += 1
        else:
            raise NetlistError(
                f"source {name!r}: unexpected token {tokens[i]!r} in {spec!r}"
            )
    if waveform is None:
        waveform = Constant(0.0 if dc is None else dc)
    return waveform, ac


#: ``{param}`` reference inside a subcircuit-body token.
_PARAM_RE = re.compile(r"\{([A-Za-z_][\w.]*)\}")


class _SubcktDef:
    """One ``.subckt`` definition collected before flattening.

    ``params`` maps lower-cased parameter names to their default value
    tokens; ``body`` holds ``(lineno, text)`` cards in source order.
    """

    def __init__(
        self, name: str, ports: tuple[str, ...], params: dict[str, str], lineno: int
    ) -> None:
        self.name = name
        self.ports = ports
        self.params = params
        self.lineno = lineno
        self.body: list[tuple[int, str]] = []

    @property
    def key(self) -> str:
        return self.name.lower()


class Netlist:
    """Ordered circuit description with node and input-channel registries.

    Examples
    --------
    >>> nl = Netlist("rc lowpass")
    >>> nl.add_current_source("Iin", "0", "in", waveform=Constant(1.0))
    0
    >>> nl.add_resistor("R1", "in", "0", 1e3)
    >>> nl.add_capacitor("C1", "in", "0", 1e-6)
    >>> nl.n_nodes, nl.n_channels
    (1, 1)
    """

    def __init__(self, title: str = "") -> None:
        self.title = title
        self.elements: list[Element] = []
        self.couplings: list[MutualInductance] = []
        self.analysis = AnalysisSpec()
        #: subcircuit instances expanded during parsing (0 for flat decks)
        self.n_instances = 0
        self._names: set[str] = set()
        self._node_order: list[str] = []
        self._node_index: dict[str, int] = {}
        self._waveforms: dict[int, Waveform] = {}
        self._ac_magnitudes: dict[int, complex] = {}
        self._next_channel = 0

    # ------------------------------------------------------------------
    # node bookkeeping
    # ------------------------------------------------------------------
    @staticmethod
    def is_ground(node: str) -> bool:
        """True when ``node`` is a ground alias (``0``/``gnd``/``vss``/``ground``).

        Comparison is case-insensitive: ``Gnd``, ``VSS`` and
        ``Ground`` all name the reference node (registering them as
        live nodes would silently produce a wrong MNA system).

        >>> Netlist.is_ground("Gnd"), Netlist.is_ground("VSS")
        (True, True)
        """
        return node.lower() in GROUND_NAMES

    def _register_node(self, node: str) -> None:
        if self.is_ground(node) or node in self._node_index:
            return
        self._node_index[node] = len(self._node_order)
        self._node_order.append(node)

    @property
    def nodes(self) -> list[str]:
        """Non-ground node names in first-appearance order."""
        return list(self._node_order)

    def node_index(self, node: str) -> int:
        """Index of a non-ground node in the unknown vector.

        Raises
        ------
        NetlistError
            For ground or unknown nodes.
        """
        if self.is_ground(node):
            raise NetlistError(f"node {node!r} is ground and has no index")
        try:
            return self._node_index[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    @property
    def n_nodes(self) -> int:
        return len(self._node_order)

    # ------------------------------------------------------------------
    # element insertion
    # ------------------------------------------------------------------
    def add(self, element: Element) -> None:
        """Add a pre-built element record (used by the typed helpers)."""
        if element.name in self._names:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self._register_node(element.a)
        self._register_node(element.b)
        self.elements.append(element)

    def add_resistor(self, name: str, a: str, b: str, resistance: float) -> None:
        """Add a resistor of ``resistance`` ohms between nodes ``a`` and ``b``."""
        self.add(Resistor(name, a, b, resistance=float(resistance)))

    def add_capacitor(self, name: str, a: str, b: str, capacitance: float) -> None:
        """Add a capacitor of ``capacitance`` farads between ``a`` and ``b``."""
        self.add(Capacitor(name, a, b, capacitance=float(capacitance)))

    def add_inductor(self, name: str, a: str, b: str, inductance: float) -> None:
        """Add an inductor of ``inductance`` henries between ``a`` and ``b``."""
        self.add(Inductor(name, a, b, inductance=float(inductance)))

    def add_cpe(self, name: str, a: str, b: str, q: float, alpha: float) -> None:
        """Add a constant-phase element ``i = q d^alpha v/dt^alpha`` (fractional capacitor)."""
        self.add(CPE(name, a, b, q=float(q), alpha=float(alpha)))

    def add_vccs(self, name: str, a: str, b: str, c: str, d: str, gm: float) -> None:
        """Add a VCCS: ``i(a->b) = gm * (v(c) - v(d))`` (SPICE G element)."""
        self._register_node(c)
        self._register_node(d)
        self.add(VCCS(name, a, b, c=c, d=d, gm=float(gm)))

    def add_mutual(self, name: str, inductor1: str, inductor2: str, coupling: float) -> None:
        """Couple two existing inductors with coefficient ``k`` (SPICE K element)."""
        if name in self._names:
            raise NetlistError(f"duplicate element name {name!r}")
        inductor_names = {el.name for el in self.inductors}
        for ref in (inductor1, inductor2):
            if ref not in inductor_names:
                raise NetlistError(
                    f"{name}: inductor {ref!r} must be added before coupling it"
                )
        self._names.add(name)
        self.couplings.append(
            MutualInductance(name, inductor1, inductor2, coupling=float(coupling))
        )

    def _allocate_channel(self, waveform: Waveform | None, channel: int | None) -> int:
        if channel is None:
            channel = self._next_channel
            self._next_channel += 1
        else:
            channel = int(channel)
            self._next_channel = max(self._next_channel, channel + 1)
        if waveform is not None:
            existing = self._waveforms.get(channel)
            if existing is not None and existing is not waveform:
                raise NetlistError(
                    f"channel {channel} already has waveform {existing!r}"
                )
            self._waveforms[channel] = waveform
        return channel

    def add_current_source(
        self,
        name: str,
        a: str,
        b: str,
        waveform: Waveform | None = None,
        *,
        channel: int | None = None,
        scale: float = 1.0,
    ) -> int:
        """Add a current source; returns its input-channel index."""
        channel = self._allocate_channel(waveform, channel)
        self.add(CurrentSource(name, a, b, channel=channel, scale=float(scale)))
        return channel

    def add_voltage_source(
        self,
        name: str,
        a: str,
        b: str,
        waveform: Waveform | None = None,
        *,
        channel: int | None = None,
        scale: float = 1.0,
    ) -> int:
        """Add a voltage source; returns its input-channel index."""
        channel = self._allocate_channel(waveform, channel)
        self.add(VoltageSource(name, a, b, channel=channel, scale=float(scale)))
        return channel

    def set_channel_waveform(self, channel: int, waveform: Waveform) -> None:
        """Attach (or replace) the waveform driving an input channel."""
        if channel < 0 or channel >= self.n_channels:
            raise NetlistError(f"channel {channel} out of range [0, {self.n_channels})")
        self._waveforms[int(channel)] = waveform

    def set_ac_magnitude(self, channel: int, magnitude: complex) -> None:
        """Attach a small-signal (``.ac``) magnitude to an input channel."""
        if channel < 0 or channel >= self.n_channels:
            raise NetlistError(f"channel {channel} out of range [0, {self.n_channels})")
        self._ac_magnitudes[int(channel)] = complex(magnitude)

    def ac_vector(self) -> np.ndarray:
        """Per-channel small-signal excitation for ``.ac`` analysis.

        Channels whose source carried an ``AC <mag> [<phase>]`` entry
        contribute that complex magnitude; the others contribute zero.
        A *single-channel* deck without any AC entry defaults to the
        customary unit excitation (``1 + 0j``) so simple decks need no
        boilerplate; a multi-channel deck must say which sources excite
        the sweep -- exciting all of them at once would report a
        physically meaningless superposition.
        """
        p = self.n_channels
        if p == 0:
            raise NetlistError("netlist has no input channels")
        if not self._ac_magnitudes:
            if p == 1:
                return np.ones(1, dtype=complex)
            raise NetlistError(
                f"the deck has {p} input channels but no source declares an "
                "AC magnitude; add 'AC <mag> [<phase>]' to the source(s) "
                "that should excite the .ac sweep"
            )
        out = np.zeros(p, dtype=complex)
        for channel, magnitude in self._ac_magnitudes.items():
            out[channel] = magnitude
        return out

    # ------------------------------------------------------------------
    # element queries
    # ------------------------------------------------------------------
    def of_type(self, kind) -> list:
        """All elements of the given component class, in insertion order."""
        return [el for el in self.elements if isinstance(el, kind)]

    @property
    def resistors(self) -> list[Resistor]:
        return self.of_type(Resistor)

    @property
    def capacitors(self) -> list[Capacitor]:
        return self.of_type(Capacitor)

    @property
    def inductors(self) -> list[Inductor]:
        return self.of_type(Inductor)

    @property
    def cpes(self) -> list[CPE]:
        return self.of_type(CPE)

    @property
    def current_sources(self) -> list[CurrentSource]:
        return self.of_type(CurrentSource)

    @property
    def voltage_sources(self) -> list[VoltageSource]:
        return self.of_type(VoltageSource)

    @property
    def n_channels(self) -> int:
        return self._next_channel

    # ------------------------------------------------------------------
    # input functions
    # ------------------------------------------------------------------
    def input_function(self, *, derivative: bool = False) -> Callable:
        """Vectorised ``u(times) -> (n_channels, nt)`` from attached waveforms.

        ``derivative=True`` returns the channel-wise time derivative
        (what the NA second-order model consumes).

        Raises
        ------
        NetlistError
            If any channel lacks an attached waveform.
        """
        p = self.n_channels
        if p == 0:
            raise NetlistError("netlist has no input channels")
        waveforms = []
        for ch in range(p):
            wf = self._waveforms.get(ch)
            if wf is None:
                raise NetlistError(f"channel {ch} has no attached waveform")
            waveforms.append(wf.derivative() if derivative else wf)

        def u_fn(times, _wfs=tuple(waveforms)):
            t = np.atleast_1d(np.asarray(times, dtype=float))
            return np.vstack([wf(t) for wf in _wfs])

        return u_fn

    # ------------------------------------------------------------------
    # parameter variations
    # ------------------------------------------------------------------
    #: The element field that ``with_values`` / ``element_values``
    #: treat as *the* value of each component class.
    _VALUE_FIELDS: dict = {}

    @classmethod
    def _value_field(cls, element) -> str:
        if not cls._VALUE_FIELDS:
            cls._VALUE_FIELDS.update(
                {
                    Resistor: "resistance",
                    Capacitor: "capacitance",
                    Inductor: "inductance",
                    CPE: "q",
                    VCCS: "gm",
                    CurrentSource: "scale",
                    VoltageSource: "scale",
                }
            )
        try:
            return cls._VALUE_FIELDS[type(element)]
        except KeyError:
            raise NetlistError(
                f"element {element.name!r} of type "
                f"{type(element).__name__} has no variable value"
            ) from None

    def element_values(self) -> dict[str, float]:
        """Nominal value of every element, keyed by name.

        Resistance / capacitance / inductance / CPE ``q`` / VCCS ``gm``
        for the passive elements, the ``scale`` factor for sources, and
        the coupling coefficient for ``K`` cards -- exactly the numbers
        :meth:`with_values` can override.
        """
        values = {
            el.name: float(getattr(el, self._value_field(el)))
            for el in self.elements
        }
        for pair in self.couplings:
            values[pair.name] = float(pair.coupling)
        return values

    def with_values(self, overrides: dict) -> "Netlist":
        """A copy of this netlist with some element values replaced.

        The copy preserves element order, node numbering, input-channel
        allocation, attached waveforms / AC magnitudes, and the
        analysis cards, so the varied circuit is state-compatible with
        the base one -- exactly what
        :func:`~repro.circuits.mna.assemble_mna_restamp` (and therefore
        :meth:`repro.engine.executor.Ensemble.variations`) requires.

        Parameters
        ----------
        overrides:
            Element name -> new value.  Unknown names raise with the
            list of known elements.

        Examples
        --------
        >>> base = Netlist.from_spice("I1 0 a 1m\\nR1 a 0 1k\\nC1 a 0 1u\\n")
        >>> varied = base.with_values({"R1": 1.2e3})
        >>> varied.resistors[0].resistance, base.resistors[0].resistance
        (1200.0, 1000.0)
        >>> varied.nodes == base.nodes
        True
        """
        import dataclasses

        known = {el.name for el in self.elements}
        known.update(pair.name for pair in self.couplings)
        unknown = set(overrides) - known
        if unknown:
            raise NetlistError(
                f"cannot vary unknown element(s) {sorted(unknown)}; "
                f"netlist has {sorted(known)}"
            )
        varied = Netlist(self.title)
        for el in self.elements:
            if el.name in overrides:
                el = dataclasses.replace(
                    el, **{self._value_field(el): float(overrides[el.name])}
                )
            if isinstance(el, VCCS):
                # match add_vccs: control nodes register before terminals
                varied._register_node(el.c)
                varied._register_node(el.d)
            varied.add(el)
        for pair in self.couplings:
            if pair.name in overrides:
                pair = dataclasses.replace(
                    pair, coupling=float(overrides[pair.name])
                )
            varied._names.add(pair.name)
            varied.couplings.append(pair)
        varied.analysis = self.analysis
        varied._waveforms = dict(self._waveforms)
        varied._ac_magnitudes = dict(self._ac_magnitudes)
        varied._next_channel = self._next_channel
        return varied

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------
    @staticmethod
    def _numbered_logical_lines(text: str) -> list[tuple[int, str]]:
        """Join ``+`` continuations and strip comments from a deck.

        Returns ``(lineno, card)`` pairs where ``lineno`` is the
        1-based physical line the card started on (duplicate-name
        diagnostics point back at it).  ``*`` lines are full-line
        comments; ``;`` and ``$`` begin inline comments; a leading
        ``+`` continues the previous card (comments are stripped
        before joining, so a commented card still continues cleanly).
        Stops at ``.end`` -- the terminator card exactly, so that
        ``.ends`` (subcircuit end) and ``.endl`` pass through.
        """

        def strip_inline(line: str) -> str:
            # ';' comments anywhere; '$' only at line start or after
            # whitespace (tool-generated decks use '$' inside
            # hierarchical node names)
            pos = line.find(";")
            if pos >= 0:
                line = line[:pos]
            match = re.search(r"(?:^|\s)\$", line)
            if match:
                line = line[: match.start()]
            return line.strip()

        logical: list[tuple[int, str]] = []
        for lineno, raw_line in enumerate(text.splitlines(), start=1):
            line = raw_line.strip()
            if not line or line.startswith("*"):
                continue
            if line.startswith("+"):
                continuation = strip_inline(line[1:])
                if not logical:
                    raise NetlistError(
                        "continuation line '+' with no card to continue"
                    )
                if continuation:
                    start, card = logical[-1]
                    logical[-1] = (start, card + " " + continuation)
                continue
            line = strip_inline(line)
            if not line:
                continue
            if line.split()[0].lower() == ".end":
                break
            logical.append((lineno, line))
        return logical

    @staticmethod
    def _logical_lines(text: str) -> list[str]:
        """Logical cards of a deck, without source-line numbers."""
        return [card for _, card in Netlist._numbered_logical_lines(text)]

    # ------------------------------------------------------------------
    # hierarchy: .subckt collection and X-card expansion
    # ------------------------------------------------------------------
    @classmethod
    def _collect_subckts(
        cls, numbered: list[tuple[int, str]]
    ) -> tuple[list[tuple[int, str]], dict[str, "_SubcktDef"]]:
        """Split numbered cards into top-level cards and subckt definitions.

        Raises
        ------
        NetlistError
            For duplicate ``.subckt`` definitions (naming both source
            lines), nested definitions, analysis dot-cards inside a
            body, stray/missing ``.ends``, or a malformed header.
        """
        defs: dict[str, _SubcktDef] = {}
        top: list[tuple[int, str]] = []
        current: _SubcktDef | None = None
        for lineno, line in numbered:
            fields = line.split()
            command = fields[0].lower()
            if command == ".subckt":
                if current is not None:
                    raise NetlistError(
                        f"nested .subckt at line {lineno}: definition of "
                        f"{current.name!r} (line {current.lineno}) is still open"
                    )
                if len(fields) < 3:
                    raise NetlistError(
                        f".subckt at line {lineno} expects '.subckt <name> "
                        f"<port> [<port> ...] [param=value ...]', got {line!r}"
                    )
                name = fields[1]
                prior = defs.get(name.lower())
                if prior is not None:
                    raise NetlistError(
                        f"duplicate .subckt definition {name!r}: first defined "
                        f"at line {prior.lineno}, redefined at line {lineno}"
                    )
                ports: list[str] = []
                params: dict[str, str] = {}
                for token in fields[2:]:
                    if "=" in token:
                        pname, _, pval = token.partition("=")
                        if not pname or not pval:
                            raise NetlistError(
                                f".subckt {name!r} (line {lineno}): malformed "
                                f"parameter default {token!r}"
                            )
                        params[pname.lower()] = pval
                    elif params:
                        raise NetlistError(
                            f".subckt {name!r} (line {lineno}): port {token!r} "
                            "appears after parameter defaults"
                        )
                    else:
                        if cls.is_ground(token):
                            raise NetlistError(
                                f".subckt {name!r} (line {lineno}): port "
                                f"{token!r} is a ground alias; connect ground "
                                "inside the body instead"
                            )
                        if token.lower() in (p.lower() for p in ports):
                            raise NetlistError(
                                f".subckt {name!r} (line {lineno}): duplicate "
                                f"port {token!r}"
                            )
                        ports.append(token)
                if not ports:
                    raise NetlistError(
                        f".subckt {name!r} (line {lineno}) declares no ports"
                    )
                current = _SubcktDef(name, tuple(ports), params, lineno)
                defs[current.key] = current
            elif command == ".ends":
                if current is None:
                    raise NetlistError(
                        f".ends at line {lineno} without an open .subckt"
                    )
                if len(fields) > 1 and fields[1].lower() != current.key:
                    raise NetlistError(
                        f".ends {fields[1]!r} at line {lineno} does not close "
                        f".subckt {current.name!r} (line {current.lineno})"
                    )
                current = None
            elif current is not None:
                if command.startswith("."):
                    raise NetlistError(
                        f"dot-card {fields[0]!r} inside .subckt "
                        f"{current.name!r} (line {lineno}): analysis cards "
                        "belong at top level"
                    )
                current.body.append((lineno, line))
            else:
                top.append((lineno, line))
        if current is not None:
            raise NetlistError(
                f".subckt {current.name!r} (line {current.lineno}) is never "
                "closed with .ends"
            )
        return top, defs

    @staticmethod
    def _substitute_params(token: str, params: dict[str, str], context: str) -> str:
        """Replace ``{param}`` references in one card token."""

        def repl(match: "re.Match[str]") -> str:
            key = match.group(1).lower()
            try:
                return params[key]
            except KeyError:
                known = ", ".join(sorted(params)) or "none declared"
                raise NetlistError(
                    f"{context}: unknown parameter "
                    f"{{{match.group(1)}}} (known: {known})"
                ) from None

        return _PARAM_RE.sub(repl, token)

    @classmethod
    def _expand_instance(
        cls,
        lineno: int,
        fields: list[str],
        defs: dict[str, "_SubcktDef"],
        parent_prefix: str,
        parent_map: Callable[[str], str],
        stack: tuple[str, ...],
        seen: dict[str, int],
        out: list[tuple[int, list[str]]],
    ) -> int:
        """Expand one ``X`` card into flattened element cards (appended
        to ``out``); returns the number of instances expanded
        (including nested ones)."""
        inst_name = fields[0]
        rest = list(fields[1:])
        overrides: dict[str, str] = {}
        while rest and "=" in rest[-1]:
            pname, _, pval = rest.pop().partition("=")
            if not pname or not pval:
                raise NetlistError(
                    f"instance {inst_name!r} (line {lineno}): malformed "
                    f"parameter override {pname + '=' + pval!r}"
                )
            overrides[pname.lower()] = pval
        if len(rest) < 2:
            raise NetlistError(
                f"instance card {inst_name!r} (line {lineno}) expects "
                "'X<name> <node> [<node> ...] <subckt> [param=value ...]'"
            )
        sub_name = rest[-1]
        connections = rest[:-1]
        sdef = defs.get(sub_name.lower())
        if sdef is None:
            known = ", ".join(sorted(d.name for d in defs.values())) or "none"
            raise NetlistError(
                f"instance {inst_name!r} (line {lineno}): unknown subcircuit "
                f"{sub_name!r} (defined: {known})"
            )
        if sdef.key in stack:
            chain = " -> ".join((*stack, sdef.key))
            raise NetlistError(
                f"instance {inst_name!r} (line {lineno}): recursive "
                f"instantiation of .subckt {sdef.name!r} ({chain})"
            )
        if len(connections) != len(sdef.ports):
            raise NetlistError(
                f"instance {inst_name!r} (line {lineno}): {len(connections)} "
                f"connection(s) for .subckt {sdef.name!r} with "
                f"{len(sdef.ports)} port(s) {sdef.ports}"
            )
        unknown = set(overrides) - set(sdef.params)
        if unknown:
            known = ", ".join(sorted(sdef.params)) or "none declared"
            raise NetlistError(
                f"instance {inst_name!r} (line {lineno}): unknown "
                f"parameter(s) {sorted(unknown)} for .subckt {sdef.name!r} "
                f"(known: {known})"
            )
        prefix = (
            f"{parent_prefix}.{inst_name.lower()}"
            if parent_prefix
            else inst_name.lower()
        )
        prior = seen.get(prefix)
        if prior is not None:
            raise NetlistError(
                f"duplicate instance name {inst_name!r}: first defined at "
                f"line {prior}, redefined at line {lineno}"
            )
        seen[prefix] = lineno
        params = {**sdef.params, **overrides}
        node_map = {
            port.lower(): parent_map(conn)
            for port, conn in zip(sdef.ports, connections)
        }

        def map_node(token: str) -> str:
            if cls.is_ground(token):
                return "0"  # ground aliases unify before flattening
            mapped = node_map.get(token.lower())
            if mapped is not None:
                return mapped
            return f"{prefix}.{token}"

        count = 1
        context = f"instance {prefix!r} of .subckt {sdef.name!r}"
        for body_lineno, body_line in sdef.body:
            body_fields = [
                cls._substitute_params(
                    token, params, f"{context}, body line {body_lineno}"
                )
                for token in body_line.split()
            ]
            kind = body_fields[0][0].upper()
            if kind == "X":
                count += cls._expand_instance(
                    body_lineno,
                    body_fields,
                    defs,
                    parent_prefix=prefix,
                    parent_map=map_node,
                    stack=(*stack, sdef.key),
                    seen=seen,
                    out=out,
                )
                continue
            flat_name = f"{prefix}.{body_fields[0]}"
            if kind == "K":
                if len(body_fields) != 4:
                    raise NetlistError(
                        f"coupling card {flat_name!r} (line {body_lineno}): "
                        f"expected 4 fields, got {len(body_fields)}"
                    )
                out.append(
                    (
                        body_lineno,
                        [
                            flat_name,
                            f"{prefix}.{body_fields[1]}",
                            f"{prefix}.{body_fields[2]}",
                            body_fields[3],
                        ],
                    )
                )
                continue
            n_nodes = 4 if kind == "G" else 2
            if len(body_fields) < 1 + n_nodes:
                raise NetlistError(
                    f"card {flat_name!r} (line {body_lineno}): too few fields "
                    f"for a {kind} element"
                )
            out.append(
                (
                    body_lineno,
                    [
                        flat_name,
                        *(map_node(t) for t in body_fields[1 : 1 + n_nodes]),
                        *body_fields[1 + n_nodes :],
                    ],
                )
            )
        return count

    def _parse_dot_card(self, fields: list[str]) -> None:
        """Parse one ``.tran`` / ``.ac`` / ``.ic`` / ``.options`` card."""
        command = fields[0].lower()
        spec = self.analysis
        if command == ".tran":
            numbers = [f for f in fields[1:] if f.lower() != "uic"]
            uic = len(numbers) != len(fields) - 1
            if len(numbers) < 2 or len(numbers) > 4:
                raise NetlistError(
                    ".tran expects '.tran tstep tstop [tstart] [tmax] [uic]', "
                    f"got {' '.join(fields)!r}"
                )
            values = [parse_value(tok) for tok in numbers]
            spec.tran = TranCard(
                tstep=values[0],
                tstop=values[1],
                tstart=values[2] if len(values) > 2 else 0.0,
                tmax=values[3] if len(values) > 3 else None,
                uic=uic,
            )
        elif command == ".ac":
            if len(fields) != 5:
                raise NetlistError(
                    ".ac expects '.ac dec|oct|lin n fstart fstop', "
                    f"got {' '.join(fields)!r}"
                )
            try:
                n_points = int(parse_value(fields[2]))
            except NetlistError:
                raise NetlistError(
                    f".ac point count must be an integer, got {fields[2]!r}"
                ) from None
            spec.ac = AcCard(
                variation=fields[1].lower(),
                n=n_points,
                f_start=parse_value(fields[3]),
                f_stop=parse_value(fields[4]),
            )
        elif command == ".ic":
            body = re.sub(r"\s*=\s*", "=", " ".join(fields[1:]))
            for entry in body.split():
                match = re.fullmatch(r"v\((.+)\)=(\S+)", entry, re.IGNORECASE)
                if not match:
                    raise NetlistError(
                        f".ic entries must look like v(node)=value, got {entry!r}"
                    )
                node = match.group(1).strip()
                if self.is_ground(node):
                    raise NetlistError(f".ic cannot set the ground node {node!r}")
                spec.ic[node] = parse_value(match.group(2))
        elif command in (".options", ".option"):
            body = re.sub(r"\s*=\s*", "=", " ".join(fields[1:]))
            for entry in body.split():
                key, sep, value = entry.partition("=")
                if not sep or not key or not value:
                    raise NetlistError(
                        f".options entries must look like key=value, got {entry!r}"
                    )
                spec.set_option(key, value)
        # other dot-commands (.print, .plot, .temp, ...) are ignored

    @classmethod
    def from_spice(cls, text: str, title: str = "") -> "Netlist":
        """Build a netlist from SPICE-subset cards (see module docstring).

        Handles ``+`` continuation lines, inline ``;`` / ``$``
        comments, transient source functions, ``.subckt``/``.ends``
        definitions with ``X`` instances (flattened recursively, with
        hierarchical node/element names and ``{param}`` substitution),
        and the ``.tran`` / ``.ac`` / ``.ic`` / ``.options``
        dot-commands (collected into :attr:`analysis`).

        Examples
        --------
        >>> nl = Netlist.from_spice('''
        ... * simple rc
        ... I1 0 n1 SIN(0 1m 1k)  ; 1 kHz drive
        ... R1 n1 0 1kOhm
        ... C1 n1 0 1u
        ... .tran 10u 5m
        ... ''')
        >>> nl.n_nodes, nl.analysis.tran.steps
        (1, 500)

        >>> nl = Netlist.from_spice('''
        ... .subckt rcsec in out r=1k c=1u
        ... R1 in out {r}
        ... C1 out gnd {c}
        ... .ends
        ... V1 drive 0 SIN(0 1 1k)
        ... Xa drive mid rcsec
        ... Xb mid tap rcsec r=2k
        ... .tran 10u 5m
        ... ''')
        >>> nl.nodes
        ['drive', 'mid', 'tap']
        >>> [r.name for r in nl.resistors], nl.resistors[1].resistance
        (['xa.R1', 'xb.R1'], 2000.0)
        """
        netlist = cls(title)
        numbered = cls._numbered_logical_lines(text)
        top, defs = cls._collect_subckts(numbered)
        flat: list[tuple[int, list[str]]] = []
        seen: dict[str, int] = {}
        n_instances = 0
        for lineno, line in top:
            fields = line.split()
            if not fields[0].startswith(".") and fields[0][0].upper() == "X":
                n_instances += cls._expand_instance(
                    lineno,
                    fields,
                    defs,
                    parent_prefix="",
                    parent_map=lambda token: (
                        "0" if cls.is_ground(token) else token
                    ),
                    stack=(),
                    seen=seen,
                    out=flat,
                )
            else:
                flat.append((lineno, fields))
        netlist.n_instances = n_instances
        for lineno, fields in flat:
            name = fields[0]
            if name.startswith("."):
                netlist._parse_dot_card(fields)
                continue
            # hierarchical names keep the element-kind letter in the
            # leaf segment ("xa.R1" is a resistor)
            leaf = name.rsplit(".", 1)[-1]
            kind = leaf[0].upper() if leaf else "?"
            prior = seen.get(name)
            if prior is not None and prior != lineno:
                raise NetlistError(
                    f"duplicate element name {name!r}: first defined at "
                    f"line {prior}, redefined at line {lineno}"
                )
            seen[name] = lineno
            if kind in "RCL" and len(fields) != 4:
                raise NetlistError(f"card {name!r}: expected 4 fields, got {len(fields)}")
            if kind in "IV" and len(fields) < 4:
                raise NetlistError(
                    f"source card {name!r}: expected nodes plus a value or "
                    f"source spec, got {len(fields)} fields"
                )
            if kind == "P" and len(fields) != 5:
                raise NetlistError(f"CPE card {name!r}: expected 5 fields, got {len(fields)}")
            if kind == "G" and len(fields) != 6:
                raise NetlistError(f"VCCS card {name!r}: expected 6 fields, got {len(fields)}")
            if kind == "K":
                if len(fields) != 4:
                    raise NetlistError(
                        f"coupling card {name!r}: expected 4 fields, got {len(fields)}"
                    )
                netlist.add_mutual(name, fields[1], fields[2], parse_value(fields[3]))
                continue
            a, b = fields[1], fields[2]
            if kind == "R":
                netlist.add_resistor(name, a, b, parse_value(fields[3]))
            elif kind == "C":
                netlist.add_capacitor(name, a, b, parse_value(fields[3]))
            elif kind == "L":
                netlist.add_inductor(name, a, b, parse_value(fields[3]))
            elif kind in "IV":
                waveform, ac = parse_source_spec(" ".join(fields[3:]), name)
                adder = (
                    netlist.add_current_source
                    if kind == "I"
                    else netlist.add_voltage_source
                )
                channel = adder(name, a, b, waveform)
                if ac is not None:
                    netlist.set_ac_magnitude(channel, ac)
            elif kind == "G":
                netlist.add_vccs(
                    name, a, b, fields[3], fields[4], parse_value(fields[5])
                )
            elif kind == "P":
                netlist.add_cpe(name, a, b, parse_value(fields[3]), parse_value(fields[4]))
            else:
                raise NetlistError(f"unsupported card {name!r}")
        if not netlist.elements:
            raise NetlistError("netlist contains no elements")
        for node in netlist.analysis.ic:
            netlist.node_index(node)  # unknown .ic nodes fail fast
        return netlist

    @classmethod
    def from_spice_file(cls, path) -> "Netlist":
        """Read and parse a netlist file; the title is the file stem."""
        from pathlib import Path

        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise NetlistError(f"cannot read netlist {path}: {exc}") from exc
        return cls.from_spice(text, title=path.stem)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Element/node counts, for logging and tests."""
        return {
            "nodes": self.n_nodes,
            "resistors": len(self.resistors),
            "capacitors": len(self.capacitors),
            "inductors": len(self.inductors),
            "cpes": len(self.cpes),
            "couplings": len(self.couplings),
            "current_sources": len(self.current_sources),
            "voltage_sources": len(self.voltage_sources),
            "channels": self.n_channels,
        }

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"Netlist({self.title!r}, nodes={s['nodes']}, "
            f"R={s['resistors']}, C={s['capacitors']}, L={s['inductors']}, "
            f"CPE={s['cpes']}, I={s['current_sources']}, V={s['voltage_sources']})"
        )

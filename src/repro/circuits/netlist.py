"""Netlist container and SPICE-subset parser.

A :class:`Netlist` is an ordered collection of circuit elements plus
the bookkeeping needed for matrix assembly: node numbering (ground
excluded), input-channel allocation for sources, and attached source
waveforms.  Assembly into system models is performed by
:func:`repro.circuits.mna.assemble_mna` (first-order DAE / multi-term
fractional) and :func:`repro.circuits.nodal.assemble_na` (second-order
NA model).

The parser accepts the classical SPICE card subset sufficient for the
paper's workloads::

    * comment
    R<name> <node+> <node-> <resistance>
    C<name> <node+> <node-> <capacitance>
    L<name> <node+> <node-> <inductance>
    I<name> <node+> <node-> <dc-current>
    V<name> <node+> <node-> <dc-voltage>
    G<name> <node+> <node-> <ctrl+> <ctrl-> <gm>   (VCCS)
    P<name> <node+> <node-> <q> <alpha>     (CPE, extension card)

with the usual engineering suffixes (``k``, ``meg``, ``m``, ``u``,
``n``, ``p``, ``f``, ``t``, ``g``).  Node ``0`` (or ``gnd``) is ground.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable

import numpy as np

from ..errors import NetlistError
from .components import (
    CPE,
    VCCS,
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from .sources import Constant, Waveform

__all__ = ["Netlist", "GROUND_NAMES"]

#: Node names treated as the ground reference.
GROUND_NAMES = ("0", "gnd", "GND", "ground")

_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_VALUE_RE = re.compile(r"^([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)(meg|[tgkmunpf])?$")


def parse_value(token: str) -> float:
    """Parse a SPICE numeric token with engineering suffix.

    >>> parse_value("1k"), round(parse_value("2.5u"), 12), parse_value("3meg")
    (1000.0, 2.5e-06, 3000000.0)
    """
    match = _VALUE_RE.match(token.strip().lower())
    if not match:
        raise NetlistError(f"cannot parse numeric value {token!r}")
    base = float(match.group(1))
    suffix = match.group(2)
    return base * _SUFFIXES[suffix] if suffix else base


class Netlist:
    """Ordered circuit description with node and input-channel registries.

    Examples
    --------
    >>> nl = Netlist("rc lowpass")
    >>> nl.add_current_source("Iin", "0", "in", waveform=Constant(1.0))
    0
    >>> nl.add_resistor("R1", "in", "0", 1e3)
    >>> nl.add_capacitor("C1", "in", "0", 1e-6)
    >>> nl.n_nodes, nl.n_channels
    (1, 1)
    """

    def __init__(self, title: str = "") -> None:
        self.title = title
        self.elements: list[Element] = []
        self.couplings: list[MutualInductance] = []
        self._names: set[str] = set()
        self._node_order: list[str] = []
        self._node_index: dict[str, int] = {}
        self._waveforms: dict[int, Waveform] = {}
        self._next_channel = 0

    # ------------------------------------------------------------------
    # node bookkeeping
    # ------------------------------------------------------------------
    @staticmethod
    def is_ground(node: str) -> bool:
        """True when ``node`` is one of the ground aliases (``0``, ``gnd``, ...)."""
        return node in GROUND_NAMES

    def _register_node(self, node: str) -> None:
        if self.is_ground(node) or node in self._node_index:
            return
        self._node_index[node] = len(self._node_order)
        self._node_order.append(node)

    @property
    def nodes(self) -> list[str]:
        """Non-ground node names in first-appearance order."""
        return list(self._node_order)

    def node_index(self, node: str) -> int:
        """Index of a non-ground node in the unknown vector.

        Raises
        ------
        NetlistError
            For ground or unknown nodes.
        """
        if self.is_ground(node):
            raise NetlistError(f"node {node!r} is ground and has no index")
        try:
            return self._node_index[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    @property
    def n_nodes(self) -> int:
        return len(self._node_order)

    # ------------------------------------------------------------------
    # element insertion
    # ------------------------------------------------------------------
    def add(self, element: Element) -> None:
        """Add a pre-built element record (used by the typed helpers)."""
        if element.name in self._names:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self._register_node(element.a)
        self._register_node(element.b)
        self.elements.append(element)

    def add_resistor(self, name: str, a: str, b: str, resistance: float) -> None:
        """Add a resistor of ``resistance`` ohms between nodes ``a`` and ``b``."""
        self.add(Resistor(name, a, b, resistance=float(resistance)))

    def add_capacitor(self, name: str, a: str, b: str, capacitance: float) -> None:
        """Add a capacitor of ``capacitance`` farads between ``a`` and ``b``."""
        self.add(Capacitor(name, a, b, capacitance=float(capacitance)))

    def add_inductor(self, name: str, a: str, b: str, inductance: float) -> None:
        """Add an inductor of ``inductance`` henries between ``a`` and ``b``."""
        self.add(Inductor(name, a, b, inductance=float(inductance)))

    def add_cpe(self, name: str, a: str, b: str, q: float, alpha: float) -> None:
        """Add a constant-phase element ``i = q d^alpha v/dt^alpha`` (fractional capacitor)."""
        self.add(CPE(name, a, b, q=float(q), alpha=float(alpha)))

    def add_vccs(self, name: str, a: str, b: str, c: str, d: str, gm: float) -> None:
        """Add a VCCS: ``i(a->b) = gm * (v(c) - v(d))`` (SPICE G element)."""
        self._register_node(c)
        self._register_node(d)
        self.add(VCCS(name, a, b, c=c, d=d, gm=float(gm)))

    def add_mutual(self, name: str, inductor1: str, inductor2: str, coupling: float) -> None:
        """Couple two existing inductors with coefficient ``k`` (SPICE K element)."""
        if name in self._names:
            raise NetlistError(f"duplicate element name {name!r}")
        inductor_names = {el.name for el in self.inductors}
        for ref in (inductor1, inductor2):
            if ref not in inductor_names:
                raise NetlistError(
                    f"{name}: inductor {ref!r} must be added before coupling it"
                )
        self._names.add(name)
        self.couplings.append(
            MutualInductance(name, inductor1, inductor2, coupling=float(coupling))
        )

    def _allocate_channel(self, waveform: Waveform | None, channel: int | None) -> int:
        if channel is None:
            channel = self._next_channel
            self._next_channel += 1
        else:
            channel = int(channel)
            self._next_channel = max(self._next_channel, channel + 1)
        if waveform is not None:
            existing = self._waveforms.get(channel)
            if existing is not None and existing is not waveform:
                raise NetlistError(
                    f"channel {channel} already has waveform {existing!r}"
                )
            self._waveforms[channel] = waveform
        return channel

    def add_current_source(
        self,
        name: str,
        a: str,
        b: str,
        waveform: Waveform | None = None,
        *,
        channel: int | None = None,
        scale: float = 1.0,
    ) -> int:
        """Add a current source; returns its input-channel index."""
        channel = self._allocate_channel(waveform, channel)
        self.add(CurrentSource(name, a, b, channel=channel, scale=float(scale)))
        return channel

    def add_voltage_source(
        self,
        name: str,
        a: str,
        b: str,
        waveform: Waveform | None = None,
        *,
        channel: int | None = None,
        scale: float = 1.0,
    ) -> int:
        """Add a voltage source; returns its input-channel index."""
        channel = self._allocate_channel(waveform, channel)
        self.add(VoltageSource(name, a, b, channel=channel, scale=float(scale)))
        return channel

    def set_channel_waveform(self, channel: int, waveform: Waveform) -> None:
        """Attach (or replace) the waveform driving an input channel."""
        if channel < 0 or channel >= self.n_channels:
            raise NetlistError(f"channel {channel} out of range [0, {self.n_channels})")
        self._waveforms[int(channel)] = waveform

    # ------------------------------------------------------------------
    # element queries
    # ------------------------------------------------------------------
    def of_type(self, kind) -> list:
        """All elements of the given component class, in insertion order."""
        return [el for el in self.elements if isinstance(el, kind)]

    @property
    def resistors(self) -> list[Resistor]:
        return self.of_type(Resistor)

    @property
    def capacitors(self) -> list[Capacitor]:
        return self.of_type(Capacitor)

    @property
    def inductors(self) -> list[Inductor]:
        return self.of_type(Inductor)

    @property
    def cpes(self) -> list[CPE]:
        return self.of_type(CPE)

    @property
    def current_sources(self) -> list[CurrentSource]:
        return self.of_type(CurrentSource)

    @property
    def voltage_sources(self) -> list[VoltageSource]:
        return self.of_type(VoltageSource)

    @property
    def n_channels(self) -> int:
        return self._next_channel

    # ------------------------------------------------------------------
    # input functions
    # ------------------------------------------------------------------
    def input_function(self, *, derivative: bool = False) -> Callable:
        """Vectorised ``u(times) -> (n_channels, nt)`` from attached waveforms.

        ``derivative=True`` returns the channel-wise time derivative
        (what the NA second-order model consumes).

        Raises
        ------
        NetlistError
            If any channel lacks an attached waveform.
        """
        p = self.n_channels
        if p == 0:
            raise NetlistError("netlist has no input channels")
        waveforms = []
        for ch in range(p):
            wf = self._waveforms.get(ch)
            if wf is None:
                raise NetlistError(f"channel {ch} has no attached waveform")
            waveforms.append(wf.derivative() if derivative else wf)

        def u_fn(times, _wfs=tuple(waveforms)):
            t = np.atleast_1d(np.asarray(times, dtype=float))
            return np.vstack([wf(t) for wf in _wfs])

        return u_fn

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------
    @classmethod
    def from_spice(cls, text: str, title: str = "") -> "Netlist":
        """Build a netlist from SPICE-subset cards (see module docstring).

        Examples
        --------
        >>> nl = Netlist.from_spice('''
        ... * simple rc
        ... I1 0 n1 1m
        ... R1 n1 0 1k
        ... C1 n1 0 1u
        ... ''')
        >>> nl.n_nodes
        1
        """
        netlist = cls(title)
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("*"):
                continue
            if line.lower().startswith(".end"):
                break
            if line.startswith("."):
                continue  # other dot-cards ignored in the subset
            fields = line.split()
            name = fields[0]
            kind = name[0].upper()
            if kind in "RCLIV" and len(fields) != 4:
                raise NetlistError(f"card {name!r}: expected 4 fields, got {len(fields)}")
            if kind == "P" and len(fields) != 5:
                raise NetlistError(f"CPE card {name!r}: expected 5 fields, got {len(fields)}")
            if kind == "G" and len(fields) != 6:
                raise NetlistError(f"VCCS card {name!r}: expected 6 fields, got {len(fields)}")
            if kind == "K":
                if len(fields) != 4:
                    raise NetlistError(
                        f"coupling card {name!r}: expected 4 fields, got {len(fields)}"
                    )
                netlist.add_mutual(name, fields[1], fields[2], parse_value(fields[3]))
                continue
            a, b = fields[1], fields[2]
            if kind == "R":
                netlist.add_resistor(name, a, b, parse_value(fields[3]))
            elif kind == "C":
                netlist.add_capacitor(name, a, b, parse_value(fields[3]))
            elif kind == "L":
                netlist.add_inductor(name, a, b, parse_value(fields[3]))
            elif kind == "I":
                netlist.add_current_source(name, a, b, Constant(parse_value(fields[3])))
            elif kind == "V":
                netlist.add_voltage_source(name, a, b, Constant(parse_value(fields[3])))
            elif kind == "G":
                netlist.add_vccs(
                    name, a, b, fields[3], fields[4], parse_value(fields[5])
                )
            elif kind == "P":
                netlist.add_cpe(name, a, b, parse_value(fields[3]), parse_value(fields[4]))
            else:
                raise NetlistError(f"unsupported card {name!r}")
        if not netlist.elements:
            raise NetlistError("netlist contains no elements")
        return netlist

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Element/node counts, for logging and tests."""
        return {
            "nodes": self.n_nodes,
            "resistors": len(self.resistors),
            "capacitors": len(self.capacitors),
            "inductors": len(self.inductors),
            "cpes": len(self.cpes),
            "couplings": len(self.couplings),
            "current_sources": len(self.current_sources),
            "voltage_sources": len(self.voltage_sources),
            "channels": self.n_channels,
        }

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"Netlist({self.title!r}, nodes={s['nodes']}, "
            f"R={s['resistors']}, C={s['capacitors']}, L={s['inductors']}, "
            f"CPE={s['cpes']}, I={s['current_sources']}, V={s['voltage_sources']})"
        )

"""3-D RLC power-grid generator (the paper's section V-B workload).

Builds a parameterised multi-layer power-delivery network in *IR-drop
coordinates* (node voltages measure deviation below the ideal supply,
so the zero initial state of OPM is the quiescent grid):

* each metal layer is an ``nx x ny`` resistive mesh (``r_wire`` per
  segment);
* every node has a decoupling/parasitic capacitor ``c_node`` to the
  supply rail;
* adjacent layers are stitched by *pure inductive* vias (``l_via``)
  placed every ``via_pitch`` nodes in both directions -- pure-L
  branches keep the netlist NA-compatible (the inductance moves into
  the ``Gamma`` stiffness term);
* package pads connect top-layer nodes to the rail through
  ``r_pad`` every ``pad_pitch`` nodes (Norton form -- NA cannot stamp
  ideal voltage sources);
* switching loads draw current at bottom-layer nodes: every
  ``load_pitch``-th node carries a current source scaled by a
  deterministic pseudo-random factor, all sharing input channel 0.

The same netlist yields the paper's two competing models:

* ``assemble_na``  -> second-order model of size ``n_nodes``
  (75 K in the paper);
* ``assemble_mna`` -> first-order DAE of size
  ``n_nodes + n_vias`` (110 K in the paper).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_float, check_positive_int
from ..errors import NetlistError
from .netlist import Netlist
from .nodal import assemble_na
from .mna import assemble_mna
from .sources import RaisedCosinePulse, Waveform

__all__ = ["power_grid", "power_grid_models", "grid_node_name"]


def grid_node_name(layer: int, ix: int, iy: int) -> str:
    """Canonical node name for grid position ``(layer, ix, iy)``."""
    return f"n{layer}_{ix}_{iy}"


def power_grid(
    nx: int,
    ny: int,
    nz: int = 3,
    *,
    r_wire: float = 1.0,
    c_node: float = 1e-15,
    l_via: float = 1e-12,
    r_pad: float = 0.05,
    via_pitch: int = 1,
    pad_pitch: int = 4,
    load_pitch: int = 3,
    load_waveform: Waveform | None = None,
    load_scale: float = 1e-3,
    seed: int = 2012,
) -> Netlist:
    """Generate the 3-D power-grid netlist (see module docstring).

    Parameters
    ----------
    nx, ny, nz:
        Mesh nodes per layer (x, y) and number of layers.
    r_wire, c_node, l_via, r_pad:
        Element values: mesh segment resistance, per-node capacitance,
        via inductance, pad resistance.
    via_pitch, pad_pitch, load_pitch:
        Placement strides for vias (both directions), pads (top layer)
        and loads (bottom layer).
    load_waveform:
        Shared waveform of all loads (default: 0.1 ns raised-cosine
        current pulse -- differentiable, as the NA model requires).
    load_scale:
        Nominal load current; per-load scales are drawn in
        ``[0.5, 1.5] * load_scale`` from a seeded RNG.
    seed:
        RNG seed for the load pattern (deterministic benchmarks).

    Returns
    -------
    Netlist
        With exactly one input channel (0) shared by all loads.

    Examples
    --------
    >>> nl = power_grid(4, 4, 2, via_pitch=2, pad_pitch=3, load_pitch=5)
    >>> s = nl.summary()
    >>> (s['nodes'], s['inductors'] > 0, s['channels'])
    (32, True, 1)
    """
    nx = check_positive_int(nx, "nx")
    ny = check_positive_int(ny, "ny")
    nz = check_positive_int(nz, "nz")
    check_positive_float(r_wire, "r_wire")
    check_positive_float(c_node, "c_node")
    check_positive_float(l_via, "l_via")
    check_positive_float(r_pad, "r_pad")
    via_pitch = check_positive_int(via_pitch, "via_pitch")
    pad_pitch = check_positive_int(pad_pitch, "pad_pitch")
    load_pitch = check_positive_int(load_pitch, "load_pitch")
    if nx * ny < 2:
        raise NetlistError("grid needs at least 2 nodes per layer")
    if load_waveform is None:
        load_waveform = RaisedCosinePulse(level=1.0, width=1e-10, t0=0.0)

    netlist = Netlist(f"power-grid {nx}x{ny}x{nz}")
    rng = np.random.default_rng(seed)

    # mesh resistors and node capacitors
    for z in range(nz):
        for ix in range(nx):
            for iy in range(ny):
                node = grid_node_name(z, ix, iy)
                netlist.add_capacitor(f"C_{node}", node, "0", c_node)
                if ix + 1 < nx:
                    right = grid_node_name(z, ix + 1, iy)
                    netlist.add_resistor(f"Rx_{node}", node, right, r_wire)
                if iy + 1 < ny:
                    up = grid_node_name(z, ix, iy + 1)
                    netlist.add_resistor(f"Ry_{node}", node, up, r_wire)

    # inductive vias between layers
    for z in range(nz - 1):
        for ix in range(0, nx, via_pitch):
            for iy in range(0, ny, via_pitch):
                lower = grid_node_name(z, ix, iy)
                upper = grid_node_name(z + 1, ix, iy)
                netlist.add_inductor(f"Lv_{z}_{ix}_{iy}", lower, upper, l_via)

    # package pads on the top layer (Norton: resistor to the rail)
    top = nz - 1
    n_pads = 0
    for ix in range(0, nx, pad_pitch):
        for iy in range(0, ny, pad_pitch):
            node = grid_node_name(top, ix, iy)
            netlist.add_resistor(f"Rp_{ix}_{iy}", node, "0", r_pad)
            n_pads += 1
    if n_pads == 0:  # pragma: no cover - pitch checked positive
        raise NetlistError("pad placement produced no pads")

    # switching loads on the bottom layer, all on channel 0
    channel = None
    for k, (ix, iy) in enumerate(
        (ix, iy) for ix in range(0, nx, load_pitch) for iy in range(0, ny, load_pitch)
    ):
        node = grid_node_name(0, ix, iy)
        scale = float(load_scale * rng.uniform(0.5, 1.5))
        channel = netlist.add_current_source(
            f"Il_{ix}_{iy}", node, "0", load_waveform if channel is None else None,
            channel=channel, scale=scale,
        )
    if channel is None:
        raise NetlistError("load placement produced no loads; decrease load_pitch")
    return netlist


def power_grid_models(
    nx: int,
    ny: int,
    nz: int = 3,
    *,
    observe: str = "center",
    **kwargs,
):
    """Build the grid and both competing models of section V-B.

    Parameters
    ----------
    nx, ny, nz, **kwargs:
        Forwarded to :func:`power_grid`.
    observe:
        ``'center'`` observes the bottom-layer center node (worst-case
        IR drop) or a list of node names.

    Returns
    -------
    dict
        ``netlist``, ``na`` (second-order model, input ``du/dt``),
        ``mna`` (first-order DAE, input ``u``), ``u`` / ``du``
        (matching input callables) and ``outputs`` (observed node
        names).

    Examples
    --------
    >>> bundle = power_grid_models(4, 4, 2, via_pitch=2)
    >>> bundle['na'].n_states < bundle['mna'].n_states
    True
    """
    netlist = power_grid(nx, ny, nz, **kwargs)
    if observe == "center":
        outputs = [grid_node_name(0, nx // 2, ny // 2)]
    else:
        outputs = list(observe)
    return {
        "netlist": netlist,
        "na": assemble_na(netlist, outputs=outputs),
        "mna": assemble_mna(netlist, outputs=outputs),
        "u": netlist.input_function(),
        "du": netlist.input_function(derivative=True),
        "outputs": outputs,
    }

"""Fractional transmission-line model (the paper's section V-A workload).

The paper simulates a 7-state, 2-input/2-output transmission-line model
with ``alpha = 1/2`` fractional dynamics, citing fractional-calculus
line modelling (its refs [7], [8]); the matrices themselves are not
printed.  We reconstruct the standard physical origin of half-order
line dynamics: a lossy line dominated by distributed resistance and
frequency-dependent (skin-effect / dielectric-relaxation) shunt
admittance behaves per unit length like a diffusion medium whose input
impedance scales as ``s^{-1/2}``; discretising such a line into ``n``
sections with series resistance ``r`` and a constant-phase shunt
element of order ``1/2`` per section gives

.. math::

    q \\frac{d^{1/2}}{dt^{1/2}} v = -\\frac{1}{r} L_{lap} v + B u ,

a pure ``alpha = 1/2`` fractional descriptor system (paper eq. (19))
with tridiagonal Laplacian ``L_lap``, ports at both ends, and one state
per section -- the same state/port count and order as the paper's
model.  See DESIGN.md section 3 for the substitution rationale.
"""

from __future__ import annotations

from .._validation import check_positive_float, check_positive_int
from ..core.lti import FractionalDescriptorSystem
from .mna import assemble_mna
from .netlist import Netlist

__all__ = ["fractional_line_netlist", "fractional_line_model"]


def fractional_line_netlist(
    n_sections: int = 7,
    *,
    r_section: float = 50.0,
    q_section: float = 4.5e-7,
    alpha: float = 0.5,
    r_termination: float | None = 50.0,
) -> Netlist:
    """Netlist of the discretised fractional line.

    Parameters
    ----------
    n_sections:
        Number of line sections (= state count); the paper uses 7.
    r_section:
        Series resistance per section (ohms).
    q_section:
        CPE pseudo-capacitance per section; with the defaults the
        characteristic section time ``(r q)^{1/alpha}`` is about half a
        nanosecond, matching the paper's 2.7 ns window.
    alpha:
        Fractional order of the shunt elements (``1/2`` in the paper).
    r_termination:
        Port termination resistance at both ends (``None`` leaves the
        ports open).  Termination keeps the model nonsingular at DC --
        CPEs block direct current, so an unterminated line floats --
        which the frequency-domain FFT baseline requires.

    Returns
    -------
    Netlist
        With current-source ports on channels 0 (near end) and 1 (far
        end); attach waveforms before calling ``input_function``.

    Examples
    --------
    >>> nl = fractional_line_netlist()
    >>> nl.summary()['cpes'], nl.summary()['channels']
    (7, 2)
    """
    n_sections = check_positive_int(n_sections, "n_sections")
    if n_sections < 2:
        raise ValueError("a line needs at least 2 sections")
    check_positive_float(r_section, "r_section")
    check_positive_float(q_section, "q_section")

    netlist = Netlist(f"fractional line ({n_sections} sections, alpha={alpha:g})")
    nodes = [f"v{k}" for k in range(1, n_sections + 1)]
    for k, node in enumerate(nodes):
        netlist.add_cpe(f"P{k + 1}", node, "0", q_section, alpha)
        if k + 1 < n_sections:
            netlist.add_resistor(f"R{k + 1}", node, nodes[k + 1], r_section)
    if r_termination is not None:
        check_positive_float(r_termination, "r_termination")
        netlist.add_resistor("Rterm1", nodes[0], "0", r_termination)
        netlist.add_resistor("Rterm2", nodes[-1], "0", r_termination)
    # ports: current injection at both ends (channels 0 and 1)
    netlist.add_current_source("Iport1", "0", nodes[0], channel=0)
    netlist.add_current_source("Iport2", "0", nodes[-1], channel=1)
    return netlist


def fractional_line_model(
    n_sections: int = 7,
    *,
    r_section: float = 50.0,
    q_section: float = 4.5e-7,
    alpha: float = 0.5,
    r_termination: float | None = 50.0,
) -> FractionalDescriptorSystem:
    """The assembled 2-port fractional descriptor model.

    Outputs are the two port voltages, giving the paper's
    ``x in R^7``, ``u, y in R^2`` shape for the defaults.

    Examples
    --------
    >>> model = fractional_line_model()
    >>> (model.n_states, model.n_inputs, model.n_outputs, model.alpha)
    (7, 2, 2, 0.5)
    """
    netlist = fractional_line_netlist(
        n_sections,
        r_section=r_section,
        q_section=q_section,
        alpha=alpha,
        r_termination=r_termination,
    )
    nodes = netlist.nodes
    system = assemble_mna(netlist, outputs=[nodes[0], nodes[-1]])
    if not isinstance(system, FractionalDescriptorSystem):  # pragma: no cover
        raise TypeError("expected a pure fractional model from CPE-only netlist")
    return system

"""Circuit element records.

Plain data classes describing the elements a :class:`~repro.circuits.netlist.Netlist`
can hold.  Stamping (how each element contributes to MNA/NA matrices)
lives in :mod:`repro.circuits.mna` and :mod:`repro.circuits.nodal`;
these classes only validate their own parameters.

The one non-classical element is the :class:`CPE` (constant-phase
element / "fractance"), the circuit-level source of the fractional
differential equations of paper section IV: its branch relation is
``i = q * d^alpha v / dt^alpha`` with ``0 < alpha < 1`` (``alpha = 1``
degenerates to a capacitor, ``alpha -> 0`` to a resistor).  Networks of
CPEs with a common ``alpha`` assemble to
``E d^alpha x/dt^alpha = A x + B u`` -- exactly paper eq. (19) -- and
mixed C/CPE networks assemble to multi-term systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetlistError

__all__ = [
    "Element",
    "Resistor",
    "Capacitor",
    "Inductor",
    "CPE",
    "VCCS",
    "MutualInductance",
    "CurrentSource",
    "VoltageSource",
]


def _check_nodes(name: str, node_a: str, node_b: str) -> None:
    if not isinstance(node_a, str) or not isinstance(node_b, str):
        raise NetlistError(f"{name}: node names must be strings")
    if node_a == node_b:
        raise NetlistError(f"{name}: both terminals connect to node {node_a!r}")


def _check_positive(name: str, quantity: str, value: float) -> float:
    value = float(value)
    if not value > 0.0:
        raise NetlistError(f"{name}: {quantity} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class Element:
    """Common fields: unique ``name`` and terminal nodes ``a`` -> ``b``."""

    name: str
    a: str
    b: str

    def __post_init__(self) -> None:
        _check_nodes(self.name, self.a, self.b)


@dataclass(frozen=True)
class Resistor(Element):
    """Linear resistor; ``resistance`` in ohms."""

    resistance: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.name, "resistance", self.resistance)

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclass(frozen=True)
class Capacitor(Element):
    """Linear capacitor; ``capacitance`` in farads."""

    capacitance: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.name, "capacitance", self.capacitance)


@dataclass(frozen=True)
class Inductor(Element):
    """Linear inductor; ``inductance`` in henries.

    MNA introduces the inductor current as an extra state; NA moves the
    inductance into the second-order stiffness term (section V-B).
    """

    inductance: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.name, "inductance", self.inductance)


@dataclass(frozen=True)
class CPE(Element):
    """Constant-phase element: ``i = q * d^alpha v/dt^alpha``.

    ``q`` is the pseudo-capacitance (units F / s^(1-alpha)) and
    ``alpha`` the fractional order in ``(0, 1]``.  Physical examples:
    supercapacitor interfaces, lossy dielectrics, skin-effect-dominated
    lines (the paper's transmission-line workload, refs [7]-[8]).
    """

    q: float = 1.0
    alpha: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.name, "q", self.q)
        alpha = float(self.alpha)
        if not 0.0 < alpha <= 1.0:
            raise NetlistError(f"{self.name}: CPE alpha must be in (0, 1], got {alpha}")


@dataclass(frozen=True)
class MutualInductance:
    """Magnetic coupling between two named inductors (SPICE K element).

    ``coupling`` is the dimensionless coefficient ``k`` with
    ``0 < |k| < 1``; the mutual inductance is
    ``M = k * sqrt(L1 * L2)``.  Not a two-terminal element -- it refers
    to existing :class:`Inductor` instances by name and stamps the
    off-diagonal entries of the inductance matrix.
    """

    name: str
    inductor1: str
    inductor2: str
    coupling: float = 0.5

    def __post_init__(self) -> None:
        if self.inductor1 == self.inductor2:
            raise NetlistError(f"{self.name}: cannot couple {self.inductor1!r} to itself")
        k = float(self.coupling)
        if not 0.0 < abs(k) < 1.0:
            raise NetlistError(
                f"{self.name}: coupling must satisfy 0 < |k| < 1, got {k} "
                "(|k| = 1 makes the inductance matrix singular)"
            )


@dataclass(frozen=True)
class VCCS(Element):
    """Voltage-controlled current source: ``i(a->b) = gm * (v(c) - v(d))``.

    The SPICE ``G`` element; the linear controlled source sufficient to
    model transconductors and small-signal active devices.  Stamps into
    the conductance part of MNA/NA.
    """

    c: str = "0"
    d: str = "0"
    gm: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.c, str) or not isinstance(self.d, str):
            raise NetlistError(f"{self.name}: control node names must be strings")
        if self.c == self.d:
            raise NetlistError(
                f"{self.name}: both control terminals on node {self.c!r}"
            )
        if float(self.gm) == 0.0:
            raise NetlistError(f"{self.name}: gm must be nonzero")


@dataclass(frozen=True)
class CurrentSource(Element):
    """Independent current source driving ``scale * waveform(t)`` from a to b.

    ``waveform`` is the index of an input channel (assigned by the
    netlist); ``scale`` multiplies that channel.  Current flows *out of*
    node ``a`` *into* node ``b`` for positive values (SPICE convention:
    positive current a -> b through the source).
    """

    channel: int = 0
    scale: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if int(self.channel) < 0:
            raise NetlistError(f"{self.name}: channel must be >= 0, got {self.channel}")


@dataclass(frozen=True)
class VoltageSource(Element):
    """Independent voltage source: ``v(a) - v(b) = scale * waveform(t)``.

    MNA adds the branch current as a state; NA cannot stamp ideal
    voltage sources (use a Norton equivalent -- see
    :func:`repro.circuits.power_grid.power_grid`).
    """

    channel: int = 0
    scale: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if int(self.channel) < 0:
            raise NetlistError(f"{self.name}: channel must be >= 0, got {self.channel}")

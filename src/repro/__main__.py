"""Command-line interface: simulate a SPICE-subset netlist with OPM.

Usage::

    python -m repro circuit.sp --t-end 5e-3 --steps 500 \\
        --outputs n1 n2 --csv waveforms.csv

Reads a netlist (R/C/L/I/V cards plus the ``P`` constant-phase-element
extension -- see :mod:`repro.circuits.netlist`), assembles the MNA
model (automatically dispatching to the fractional or multi-term
solver when CPEs are present), simulates the requested window with
OPM, and prints sampled node voltages (optionally writing a CSV).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from . import __version__
from .circuits import Netlist, assemble_mna
from .core import simulate_opm
from .errors import ReproError
from .io import Table, write_csv


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="OPM transient simulation of a SPICE-subset netlist "
        "(DATE'12 operational-matrix algorithm).",
    )
    parser.add_argument("netlist", type=Path, help="netlist file (SPICE subset)")
    parser.add_argument(
        "--t-end", type=float, required=True, help="simulation horizon in seconds"
    )
    parser.add_argument(
        "--steps", type=int, default=500, help="number of block pulses (default 500)"
    )
    parser.add_argument(
        "--outputs",
        nargs="+",
        metavar="NODE",
        help="node names to report (default: every node)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=10,
        help="number of printed sample times (default 10)",
    )
    parser.add_argument("--csv", type=Path, help="write all samples to this CSV file")
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    return parser


def run(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        text = args.netlist.read_text()
    except OSError as exc:
        print(f"error: cannot read {args.netlist}: {exc}", file=sys.stderr)
        return 2

    try:
        netlist = Netlist.from_spice(text, title=args.netlist.stem)
        outputs = args.outputs if args.outputs else netlist.nodes
        system = assemble_mna(netlist, outputs=outputs)
        result = simulate_opm(
            system, netlist.input_function(), (args.t_end, args.steps)
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(f"{netlist!r}")
    print(f"model: {system!r}")
    print(
        f"simulated [0, {args.t_end:g}) s with m={args.steps}, "
        f"{result.info['factorisations']} factorisation(s), "
        f"{result.wall_time * 1e3:.2f} ms\n"
    )

    t_print = np.linspace(args.t_end / args.points, args.t_end * 0.999, args.points)
    values = result.outputs_smooth(t_print)
    table = Table(["t [s]"] + [f"v({node})" for node in outputs])
    for k, t in enumerate(t_print):
        table.add_row([f"{t:.4g}"] + [f"{values[i, k]:.6g}" for i in range(len(outputs))])
    print(table.render())

    if args.csv is not None:
        t_all = result.grid.midpoints
        v_all = result.outputs(t_all)
        rows = [
            [f"{t_all[k]!r}"] + [repr(v_all[i, k]) for i in range(len(outputs))]
            for k in range(t_all.size)
        ]
        path = write_csv(args.csv, ["t"] + list(outputs), rows)
        print(f"\nwrote {t_all.size} samples to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(run())

"""Command-line interface: simulate a SPICE netlist with OPM.

Usage::

    python -m repro --netlist circuit.cir
    python -m repro circuit.sp --t-end 5e-3 --steps 500 \\
        --outputs n1 n2 --csv waveforms.csv

Reads a netlist (R/C/L/K/I/V cards with SIN/PULSE/PWL/EXP transient
sources, plus the ``P`` constant-phase-element extension -- see
:mod:`repro.circuits.netlist`), assembles the MNA model (automatically
dispatching to the fractional or multi-term solver when CPEs are
present), and executes the deck's analysis cards: ``.tran`` fixes the
horizon and resolution (so ``--t-end`` becomes optional), ``.ac`` adds
a small-signal frequency sweep, ``.ic`` sets initial node voltages,
and ``.options`` pre-selects basis/method/m/windows.  Command-line
flags override their matching cards.  Transient samples go to
``--csv``, AC sweeps to ``--ac-csv``.

Hierarchical decks are supported natively: ``.subckt name ports
[param=val ...]`` / ``.ends`` definitions are instantiated by ``X``
cards (nested to any depth) and flattened at parse time with
deterministic dotted names (``xfilt.n1``, ``xfilt.r1``); ``{param}``
placeholders in subcircuit bodies are substituted from instance
overrides or definition defaults.

``--lint`` runs the circuit-graph structural lint (floating nodes,
sub-circuits with no DC path to ground -- see
:mod:`repro.circuits.graph`) and exits without solving: status 0 when
the deck is clean, 1 with findings.  The same report is available from
a running service via ``client --netlist deck.cir --lint``.

``--basis`` selects the basis family the engine solves in: block
pulses (the paper's default), Walsh/Haar transforms, or spectral
Chebyshev/Legendre polynomials -- smooth circuits reach the same
accuracy with far fewer spectral coefficients (``--steps 24`` instead
of ``--steps 1000``)::

    python -m repro circuit.sp --t-end 5e-3 --steps 24 --basis chebyshev

``--method`` selects the solver route: the native operational-matrix
engine (``opm``, default), a one-shot baseline (``trapezoidal``,
``fft``, ``grunwald-letnikov``, ...), or a fractional method-zoo
discretisation (``gl``, ``oustaloup``, ``jacobi`` -- see
:mod:`repro.fractional.methods`) solved through the same cached-pencil
engine::

    python -m repro cpe.sp --t-end 1.0 --steps 512 --method oustaloup

With ``--sweep S1 S2 ...`` the netlist's input waveform is scaled by
each factor and all scaled variants are solved in a single batched
multi-RHS column sweep through one cached
:class:`~repro.engine.session.Simulator` session -- one pencil
factorisation and one triangular sweep for the whole family.

With ``--ensemble spec.json`` the deck becomes the nominal circuit of
a parameter ensemble -- a cartesian corner sweep or a seeded
Monte-Carlo tolerance analysis over element values -- and every member
is assembled (state-layout-checked against the base deck), factorised
once, and solved; ``--jobs N`` shards the members across ``N`` worker
processes with zero-copy shared-memory pencil shipping::

    python -m repro rc.sp --t-end 5e-3 --steps 200 \\
        --ensemble corners.json --jobs 8

where ``corners.json`` holds, e.g.::

    {"mode": "monte-carlo", "n": 64, "seed": 7,
     "params": {"R1": 0.2, "C1": [0.9e-6, 1.1e-6]}}

(``--parallel thread|serial`` selects the executor backend; a
``"mode": "cartesian"`` spec lists explicit values per element.)
``--jobs`` also shards a large ``--sweep`` batch across workers, and
on a deck whose circuit graph has several connected components a plain
``--jobs N`` run solves each independent sub-circuit as its own
sub-pencil in parallel and re-stitches the monolithic result
bit-identically.

With ``--windows K`` the horizon is solved by windowed time-marching:
``K`` consecutive windows of ``steps/K`` block pulses each on one
cached session, carrying the state (and, for fractional netlists, the
memory tail) across window boundaries.  Events fire at window
boundaries (so they require ``--windows``)::

    python -m repro grid.sp --t-end 1e-8 --steps 600 --windows 10 \\
        --event t=5e-9 file=grid_switched.sp --event t=8e-9 scale=2.0

``file=`` re-stamps the MNA pencil from another netlist (same nodes;
switch closures, load hookups) and switches to its sources; ``scale=``
multiplies the active input waveform (load steps).

``--reduce auto`` (or a deck's ``.options reduce=auto`` card) turns on
certified model-order reduction: large first-order pencils are reduced
once at session bind by Krylov moment matching, every solve runs on
the small reduced model, and the result is certified against a
residual error bound -- exceeding it falls back to the full model.
``--mor-order Q`` picks the number of matched block moments::

    python -m repro grid.sp --t-end 1e-8 --steps 200 --reduce auto

``--memory soe`` (or a deck's ``.options memory=soe`` card) compresses
the fractional power-law history tail into a certified
sum-of-exponentials recurrence, making long windowed marches
linear-time in the horizon; the kernel fit is certified against a
computable relative error bound (``--memory-rtol``, default 1e-10) and
falls back to the exact tail when the bound cannot be met::

    python -m repro cpe.sp --t-end 1.0 --steps 3000 --windows 100 \\
        --memory soe

Two subcommands run the simulation *service* instead of a one-shot
analysis (see :mod:`repro.engine.service`)::

    python -m repro serve --port 7777 --max-sessions 8 --bank-bytes 256M
    python -m repro client --port 7777 --netlist rc.cir --scale 2.0
    python -m repro client --port 7777 --stats
    python -m repro client --port 7777 --shutdown

``serve`` starts the long-running daemon: requests sharing a circuit
configuration hit a warm cached session (bounded LRU), and concurrent
same-configuration requests are coalesced into one batched multi-RHS
sweep.  ``client`` is the matching one-shot JSON-lines client.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

from . import __version__
from .circuits import Netlist, assemble_mna_restamp
from .core import Event, Simulator, simulate_opm
from .core.dispatch import FRACTIONAL_ZOO_METHODS, SIMULATION_METHODS, simulate
from .engine.bundle import basis_names, validate_basis_name
from .fractional.methods import validate_method_name
from .engine.netlist_session import ac_scan, build_system
from .engine.reduction import combine_reduce_options
from .errors import ReproError
from .io import Table, write_csv


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="OPM transient simulation of a SPICE-subset netlist "
        "(DATE'12 operational-matrix algorithm).",
    )
    parser.add_argument(
        "netlist",
        type=Path,
        nargs="?",
        help="netlist file (SPICE subset); equivalent to --netlist",
    )
    parser.add_argument(
        "--netlist",
        type=Path,
        dest="netlist_flag",
        metavar="FILE",
        help="netlist file (SPICE subset); its .tran/.ac/.ic/.options "
        "cards drive the analysis",
    )
    parser.add_argument(
        "--t-end",
        type=float,
        default=None,
        help="simulation horizon in seconds (default: the .tran card's tstop)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=None,
        help="number of basis terms: block pulses, or spectral coefficients "
        "for polynomial bases (default: .options m, else the .tran card's "
        "tstop/tstep, else 500)",
    )
    parser.add_argument(
        "--basis",
        default=None,
        metavar="FAMILY",
        help="basis family to solve in: "
        + ", ".join(n for n in basis_names() if n != "laguerre")
        + " (default: block-pulse; the Laguerre family needs a time "
        "scale and is library-API only)",
    )
    parser.add_argument(
        "--method",
        default=None,
        metavar="NAME",
        help="solver method: " + ", ".join(SIMULATION_METHODS)
        + " (default: .options method, else opm; 'gl', 'oustaloup' and "
        "'jacobi' are the fractional method zoo -- alternative "
        "discretisations of the fractional operator solved through the "
        "cached-pencil engine; unknown names fail with a did-you-mean "
        "suggestion)",
    )
    parser.add_argument(
        "--outputs",
        nargs="+",
        metavar="NODE",
        help="node names to report (default: every node)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=10,
        help="number of printed sample times (default 10)",
    )
    parser.add_argument(
        "--sweep",
        nargs="+",
        type=float,
        metavar="SCALE",
        help="scale the input waveform by each factor and solve the whole "
        "family in one batched multi-RHS sweep",
    )
    parser.add_argument(
        "--ensemble",
        type=Path,
        metavar="SPEC",
        help="JSON ensemble specification: parameter variations of the "
        'deck, e.g. {"mode": "monte-carlo", "n": 64, "seed": 7, '
        '"params": {"R1": 0.2}}; members are solved on one shared '
        "session configuration, sharded across --jobs workers",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker count for --ensemble (default: all cores) and for "
        "sharding a large --sweep batch (default: in-process batch)",
    )
    parser.add_argument(
        "--parallel",
        choices=("process", "thread", "serial"),
        default="process",
        help="ensemble/sweep executor backend (default: process; "
        "'serial' runs the same task plan on one core)",
    )
    parser.add_argument(
        "--windows",
        type=int,
        default=None,
        help="march the horizon as this many windows of steps/windows block "
        "pulses each (default: .options windows, else 1: one single-window "
        "solve)",
    )
    parser.add_argument(
        "--event",
        action="append",
        nargs="+",
        metavar="KEY=VALUE",
        default=None,
        help="mid-run event at a window boundary: t=TIME required, plus "
        "file=NETLIST (re-stamp the pencil from another netlist) and/or "
        "scale=FACTOR (scale the active input); repeatable",
    )
    parser.add_argument(
        "--reduce",
        default=None,
        metavar="MODE",
        help="certified model-order reduction: 'auto' reduces large "
        "first-order pencils at session bind (skipping small or "
        "unsupported ones), 'off' disables a deck's .options reduce= "
        "card; reduced runs are certified against a residual error "
        "bound and fall back to the full model when it is exceeded",
    )
    parser.add_argument(
        "--mor-order",
        type=int,
        default=None,
        metavar="Q",
        help="number of block moments for --reduce (implies reduction "
        "when --reduce is unset; default 12)",
    )
    parser.add_argument(
        "--memory",
        choices=("exact", "soe"),
        default=None,
        help="fractional-memory mode: 'soe' compresses the power-law "
        "history tail into a certified sum-of-exponentials recurrence "
        "(linear-time long-horizon marching; falls back to exact when "
        "the fit cannot be certified), 'exact' disables a deck's "
        ".options memory= card (default: .options memory, else exact)",
    )
    parser.add_argument(
        "--memory-rtol",
        type=float,
        default=None,
        metavar="TOL",
        help="certified relative L1 bound the SOE kernel fit must meet "
        "(implies --memory soe when unset; default 1e-10)",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="graph-lint the deck and exit without solving: report "
        "floating/dangling nodes and components without a DC path to "
        "ground, naming the offending nodes and elements (exit 0 when "
        "clean, 1 with findings)",
    )
    parser.add_argument("--csv", type=Path, help="write all samples to this CSV file")
    parser.add_argument(
        "--ac-csv",
        type=Path,
        metavar="FILE",
        help="write the .ac sweep (magnitude [dB] and phase [deg] per "
        "output) to this CSV file",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    return parser


def _scaled_input(u_fn, scale: float):
    """Input callable scaled by a constant factor."""

    def scaled(times, _u=u_fn, _s=scale):
        return _s * np.asarray(_u(times))

    return scaled


def _print_times(args) -> np.ndarray:
    """The sample times printed by both single-run and sweep tables."""
    return np.linspace(args.t_end / args.points, args.t_end * 0.999, args.points)


def _smooth_outputs(result, times) -> np.ndarray:
    """Best available output sampling (baseline results lack smoothing)."""
    sampler = getattr(result, "outputs_smooth", None)
    return sampler(times) if sampler is not None else result.outputs(times)


def _all_sample_times(result) -> np.ndarray:
    """The result's native sampling grid (coefficient or node based)."""
    sampler = getattr(result, "sample_times", None)
    return sampler() if sampler is not None else result.times


def _print_memory(info: dict) -> None:
    """Report the fractional-memory compression outcome, if any."""
    mem = info.get("memory") or {}
    if mem.get("mode") == "soe":
        print(
            f"compressed memory: {mem['modes']} exponential modes, "
            f"certified bound {mem['bound']:.2e} (rtol {mem['rtol']:g})"
        )
    elif mem.get("fallback"):
        print(
            f"compressed memory: fit bound {mem['bound']:.2e} missed "
            f"rtol {mem['rtol']:g}; fell back to the exact history tail"
        )


def _run_lint(netlist) -> int:
    """Report the deck's circuit-graph lint; exit 1 when defects exist."""
    from .circuits import CircuitGraph

    graph = CircuitGraph(netlist)
    s = graph.summary()
    print(
        f"deck {netlist.title!r}: {s['nodes']} node(s), "
        f"{s['elements']} element(s), {s['components']} component(s), "
        f"max degree {s['max_degree']}"
    )
    report = graph.lint()
    if not report:
        print("lint: clean")
        return 0
    for issue in report:
        print(f"lint: {issue}")
    return 1


def _component_split_applies(args, netlist) -> bool:
    """True when --jobs can parallelise a multi-component plain solve."""
    from .circuits import CircuitGraph
    from .engine.netlist_session import _memory_is_exact

    if (
        args.jobs is None
        or args.jobs < 2
        or args.t_end is None
        or args.method != "opm"
        or args.windows > 1
        or args.event
        or args.reduce_plan is not None
        or not _memory_is_exact(args.memory)
    ):
        return False
    graph = CircuitGraph(netlist)
    return graph.n_components > 1 and not graph.orphan_elements


def _run_single(args, netlist, system, outputs) -> int:
    if args.method == "opm" and _component_split_applies(args, netlist):
        from .circuits import CircuitGraph
        from .engine.netlist_session import _solve_split_components

        result = _solve_split_components(
            netlist,
            CircuitGraph(netlist),
            system,
            horizon=args.t_end,
            m=args.steps,
            basis=args.basis,
            backend=args.backend,
            memory=args.memory or "exact",
            memory_rtol=args.memory_rtol,
            sparse="auto",
            use_ic=True,
            jobs=args.jobs,
            parallel=args.parallel,
        )
    elif args.method in ("opm", "opm-windowed"):
        result = simulate_opm(
            system,
            netlist.input_function(),
            (args.t_end, args.steps),
            basis=args.basis,
            backend=args.backend,
            reduce=args.reduce_plan,
            memory=args.memory,
            memory_rtol=args.memory_rtol,
        )
    else:
        method_kwargs = {}
        if args.method == "grunwald-letnikov":
            method_kwargs["memory"] = args.memory
            method_kwargs["memory_rtol"] = args.memory_rtol
        elif args.method in FRACTIONAL_ZOO_METHODS:
            # zoo methods run on a Simulator inside dispatch: give them
            # the session backend the deck/flags picked
            method_kwargs["backend"] = args.backend
        result = simulate(
            system,
            netlist.input_function(),
            args.t_end,
            args.steps,
            method=args.method,
            basis=args.basis,
            **method_kwargs,
        )
    print(f"{netlist!r}")
    print(f"model: {system!r}")
    print(
        f"simulated [0, {args.t_end:g}) s with m={args.steps} "
        f"({result.info.get('basis', 'BlockPulse')} basis, "
        f"method {result.info.get('method', args.method)}), "
        f"{result.info.get('factorisations', 1)} factorisation(s), "
        f"{result.wall_time * 1e3:.2f} ms"
    )
    mor = result.info.get("mor") or {}
    if mor.get("reduced"):
        print(
            f"reduced model: order {mor['order']} of {mor['full_order']} "
            f"states, certified bound {mor['bound']:.2e} "
            f"(rtol {mor['rtol']:g})"
        )
    _print_memory(result.info)
    split_info = result.info.get("split") or {}
    if split_info:
        print(
            f"component split: {split_info['components']} independent "
            f"sub-pencils across {split_info.get('jobs')} worker(s) "
            f"({split_info.get('executor')} executor)"
        )
    print()

    t_print = _print_times(args)
    values = _smooth_outputs(result, t_print)
    table = Table(["t [s]"] + [f"v({node})" for node in outputs])
    for k, t in enumerate(t_print):
        table.add_row([f"{t:.4g}"] + [f"{values[i, k]:.6g}" for i in range(len(outputs))])
    print(table.render())

    if args.csv is not None:
        t_all = _all_sample_times(result)
        v_all = result.outputs(t_all)
        rows = [
            [repr(float(t_all[k]))]
            + [repr(float(v_all[i, k])) for i in range(len(outputs))]
            for k in range(t_all.size)
        ]
        path = write_csv(args.csv, ["t"] + list(outputs), rows)
        print(f"\nwrote {t_all.size} samples to {path}")
    return 0


def _run_sweep(args, netlist, system, outputs) -> int:
    scales = list(args.sweep)
    sim = Simulator(
        system,
        (args.t_end, args.steps),
        basis=args.basis,
        backend=args.backend,
        method=args.method if args.method in FRACTIONAL_ZOO_METHODS else None,
        reduce=args.reduce_plan,
        memory=args.memory,
        memory_rtol=args.memory_rtol,
    )
    base_u = netlist.input_function()
    sweep = sim.sweep(
        [_scaled_input(base_u, s) for s in scales],
        jobs=args.jobs,
        parallel=args.parallel,
    )

    sharded = (
        f" across {sweep.info['jobs']} {sweep.info['parallel']} worker(s)"
        if "jobs" in sweep.info
        else ""
    )
    print(f"{netlist!r}")
    print(f"model: {system!r}")
    print(
        f"swept {len(scales)} scaled inputs over [0, {args.t_end:g}) s with "
        f"m={args.steps} ({sweep.info.get('basis', 'BlockPulse')} basis, "
        f"{sweep.info['backend']} backend, "
        f"{sweep.info['factorisations']} factorisation(s) shared{sharded}, "
        f"{sweep.wall_time * 1e3:.2f} ms total)\n"
    )

    t_print = _print_times(args)
    values = sweep.outputs_smooth(t_print)  # (k, q, points), as in single-run mode
    table = Table(
        ["t [s]"]
        + [f"v({node})@x{scale:g}" for scale in scales for node in outputs]
    )
    for k_t, t in enumerate(t_print):
        table.add_row(
            [f"{t:.4g}"]
            + [
                f"{values[i, j, k_t]:.6g}"
                for i in range(len(scales))
                for j in range(len(outputs))
            ]
        )
    print(table.render())

    if args.csv is not None:
        t_all = sweep.sample_times()
        v_all = sweep.outputs(t_all)  # (k, q, nt)
        header = ["t"] + [
            f"{node}@x{scale:g}" for scale in scales for node in outputs
        ]
        rows = [
            [repr(float(t_all[k]))]
            + [
                repr(float(v_all[i, j, k]))
                for i in range(len(scales))
                for j in range(len(outputs))
            ]
            for k in range(t_all.size)
        ]
        path = write_csv(args.csv, header, rows)
        print(f"\nwrote {t_all.size} samples x {len(scales)} scales to {path}")
    return 0


def _run_ensemble(args, netlist, system, outputs) -> int:
    import json

    from .engine.executor import Ensemble, ParallelExecutor, default_jobs

    try:
        spec = json.loads(args.ensemble.read_text())
    except OSError as exc:
        raise ReproError(f"cannot read ensemble spec {args.ensemble}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"bad ensemble spec {args.ensemble}: {exc}") from exc
    if not isinstance(spec, dict):
        raise ReproError(
            f"ensemble spec {args.ensemble} must be a JSON object, "
            f"got {type(spec).__name__}"
        )
    ensemble = Ensemble.from_spec(netlist, spec, outputs=list(outputs))
    jobs = args.jobs if args.jobs is not None else default_jobs()
    executor = ParallelExecutor(args.parallel, jobs=jobs)
    result = executor.run(
        ensemble,
        (args.t_end, args.steps),
        basis=args.basis,
        solver_backend=args.backend,
        reduce=args.reduce_plan,
        memory=args.memory,
        memory_rtol=args.memory_rtol,
    )

    print(f"{netlist!r}")
    print(f"model: {system!r}")
    info = result.info
    shm = (
        f", {info['shm_bytes'] / 1e6:.1f} MB via shared memory"
        if info.get("shm_bytes")
        else ""
    )
    print(
        f"solved {result.n_members}-member ensemble "
        f"({spec.get('mode', 'cartesian')}) over [0, {args.t_end:g}) s with "
        f"m={args.steps} ({info.get('basis', 'BlockPulse')} basis, "
        f"{info['n_groups']} pencil group(s), {info['factorisations']} "
        f"factorisation(s), {info['jobs']} {info['executor']} worker(s)"
        f"{shm}, {result.wall_time * 1e3:.2f} ms total)\n"
    )

    t_final = args.t_end * 0.999
    table = Table(
        ["member"] + [f"v({node})@t={t_final:.3g}" for node in outputs]
    )
    finals = result.outputs([t_final])  # (k, q, 1)
    for i, label in enumerate(result.labels):
        table.add_row(
            [label] + [f"{finals[i, j, 0]:.6g}" for j in range(len(outputs))]
        )
    print(table.render())

    if args.csv is not None:
        t_all = result[0].sample_times()
        v_all = result.outputs(t_all)  # (k, q, nt)
        header = ["t"] + [
            f"{node}@{label}" for label in result.labels for node in outputs
        ]
        rows = [
            [repr(float(t_all[k]))]
            + [
                repr(float(v_all[i, j, k]))
                for i in range(result.n_members)
                for j in range(len(outputs))
            ]
            for k in range(t_all.size)
        ]
        path = write_csv(args.csv, header, rows)
        print(
            f"\nwrote {t_all.size} samples x {result.n_members} members to {path}"
        )
    return 0


def _parse_event(tokens, base_netlist, outputs) -> Event:
    """Build an :class:`Event` from ``key=value`` CLI tokens."""
    fields: dict[str, str] = {}
    for token in tokens:
        key, sep, value = token.partition("=")
        if not sep or key not in ("t", "file", "scale"):
            raise ReproError(
                f"bad --event token {token!r}; expected t=TIME "
                "[file=NETLIST] [scale=FACTOR]"
            )
        fields[key] = value
    if "t" not in fields:
        raise ReproError("--event requires t=TIME")
    try:
        t = float(fields["t"])
        scale = float(fields["scale"]) if "scale" in fields else None
    except ValueError as exc:
        raise ReproError(f"bad --event number: {exc}") from exc
    system = u = None
    label = None
    if "file" in fields:
        path = Path(fields["file"])
        try:
            text = path.read_text()
        except OSError as exc:
            raise ReproError(f"cannot read event netlist {path}: {exc}") from exc
        ev_netlist = Netlist.from_spice(text, title=path.stem)
        system = assemble_mna_restamp(ev_netlist, base_netlist, outputs=outputs)
        u = ev_netlist.input_function()
        label = path.stem
    return Event(t=t, u=u, scale=scale, system=system, label=label)


def _run_march(args, netlist, system, outputs, events) -> int:
    if args.windows < 1:
        raise ReproError(f"--windows must be >= 1, got {args.windows}")
    if args.steps % args.windows:
        raise ReproError(
            f"--steps {args.steps} must be divisible by --windows {args.windows}"
        )
    window = args.t_end / args.windows
    sim = Simulator(
        system,
        (window, args.steps // args.windows),
        basis=args.basis,
        backend=args.backend,
        reduce=args.reduce_plan,
        memory=args.memory,
        memory_rtol=args.memory_rtol,
    )
    result = sim.march(netlist.input_function(), args.t_end, events=events)

    print(f"{netlist!r}")
    print(f"model: {system!r}")
    print(
        f"marched [0, {args.t_end:g}) s as {result.n_windows} windows of "
        f"m={result.window_m} ({result.info.get('basis', 'BlockPulse')} basis, "
        f"{result.info['backend']} backend, "
        f"{result.info['factorisations']} factorisation(s), "
        f"{result.info['stamps']} pencil stamp(s), "
        f"{len(result.info['events'])} event(s), "
        f"{result.wall_time * 1e3:.2f} ms)"
    )
    _print_memory(result.info)
    print()

    t_print = _print_times(args)
    values = result.outputs_smooth(t_print)
    table = Table(["t [s]"] + [f"v({node})" for node in outputs])
    for k, t in enumerate(t_print):
        table.add_row([f"{t:.4g}"] + [f"{values[i, k]:.6g}" for i in range(len(outputs))])
    print(table.render())

    if args.csv is not None:
        t_all = result.midpoints
        v_all = result.outputs(t_all)
        rows = [
            [repr(float(t_all[k]))]
            + [repr(float(v_all[i, k])) for i in range(len(outputs))]
            for k in range(t_all.size)
        ]
        path = write_csv(args.csv, ["t"] + list(outputs), rows)
        print(f"\nwrote {t_all.size} samples to {path}")
    return 0


def _run_ac(args, netlist, system, outputs) -> None:
    """Execute the deck's ``.ac`` card and print/write the sweep."""
    scan = ac_scan(netlist, system=system, outputs=tuple(outputs))
    card = scan.card
    print(
        f"\nAC sweep: {card.variation} {card.n} points, "
        f"{card.f_start:g} Hz .. {card.f_stop:g} Hz "
        f"({scan.n_points} frequencies)\n"
    )
    mag_db = scan.magnitude_db()
    phase = scan.phase_deg()
    table = Table(
        ["f [Hz]"]
        + [f"|v({node})| [dB]" for node in outputs]
        + [f"arg v({node}) [deg]" for node in outputs]
    )
    for k, f in enumerate(scan.frequencies):
        table.add_row(
            [f"{f:.4g}"]
            + [f"{mag_db[k, j]:.4g}" for j in range(len(outputs))]
            + [f"{phase[k, j]:.4g}" for j in range(len(outputs))]
        )
    print(table.render())

    if args.ac_csv is not None:
        header = (
            ["f"]
            + [f"mag_db({node})" for node in outputs]
            + [f"phase_deg({node})" for node in outputs]
        )
        rows = [
            [repr(float(scan.frequencies[k]))]
            + [repr(float(mag_db[k, j])) for j in range(len(outputs))]
            + [repr(float(phase[k, j])) for j in range(len(outputs))]
            for k in range(scan.n_points)
        ]
        path = write_csv(args.ac_csv, header, rows)
        print(f"\nwrote {scan.n_points} AC points to {path}")


def _resolve_deck_defaults(args, netlist) -> None:
    """Fill unset CLI analysis parameters from the deck's cards.

    CLI flags win over their matching ``.tran`` / ``.options`` entries;
    the classic defaults (``steps=500``, ``windows=1``) apply only when
    neither side specifies a value.
    """
    spec = netlist.analysis
    if args.basis is None:
        args.basis = spec.basis
    if args.basis is not None:
        args.basis = validate_basis_name(args.basis)
        if args.basis == "laguerre":
            raise ReproError(
                "--basis laguerre is not available from the CLI: the "
                "Laguerre family needs an explicit time scale; use the "
                "library API with a LaguerreBasis(a, m) instance, or "
                "pick one of "
                + ", ".join(n for n in basis_names() if n != "laguerre")
            )
    if args.t_end is None and spec.tran is not None:
        args.t_end = spec.tran.tstop
    if args.steps is None:
        args.steps = spec.m or (
            spec.tran.steps if spec.tran is not None else 500
        )
    if args.windows is None:
        args.windows = spec.windows or 1
    args.backend = spec.backend or "auto"
    args.reduce_plan = combine_reduce_options(
        args.reduce if args.reduce is not None else spec.reduce,
        args.mor_order if args.mor_order is not None else spec.mor_order,
    )
    memory = args.memory if args.memory is not None else spec.memory
    memory_rtol = args.memory_rtol
    if memory_rtol is None and memory is not None and memory != "exact":
        # the deck's memory_rtol= card only applies when compression is
        # actually on (--memory exact may have overridden the card, and
        # a bare memory_rtol= card never switches compression on)
        memory_rtol = spec.memory_rtol
    if memory is None:
        # --memory-rtol alone implies compression, like --mor-order
        # implying --reduce.
        memory = "soe" if memory_rtol is not None else "exact"
    args.memory = memory
    args.memory_rtol = memory_rtol
    if args.method is None:
        args.method = spec.method or "opm"
    args.method = validate_method_name(
        args.method, SIMULATION_METHODS, context="method", error=ReproError
    )
    if args.method not in ("opm", "opm-windowed") and (
        args.windows > 1 or args.event or args.ensemble is not None
    ):
        raise ReproError(
            f"method {args.method!r} only supports a plain transient: "
            "windowed marching, --event and --ensemble are native-route "
            "engine-session features; drop the method option or the "
            "conflicting flag/card"
        )
    if args.sweep and args.method not in (
        ("opm", "opm-windowed") + FRACTIONAL_ZOO_METHODS
    ):
        raise ReproError(
            f"method {args.method!r} cannot batch a --sweep: batched "
            "multi-RHS sweeps run on a cached session (opm or a "
            "fractional zoo method)"
        )
    if args.method not in ("opm", "opm-windowed") and args.reduce_plan is not None:
        raise ReproError(
            f"method {args.method!r} does not support model-order "
            "reduction; --reduce/--mor-order apply to the OPM engine only"
        )
    if args.memory != "exact" and args.method not in (
        "opm", "opm-windowed", "grunwald-letnikov"
    ):
        raise ReproError(
            f"method {args.method!r} has no fractional memory tail "
            "to compress; --memory/--memory-rtol apply to the OPM engine "
            "and the grunwald-letnikov baseline only"
        )


def _parse_bytes(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix."""
    units = {"k": 1024, "m": 1024**2, "g": 1024**3}
    text = text.strip().lower().removesuffix("b")
    factor = 1
    if text and text[-1] in units:
        factor = units[text[-1]]
        text = text[:-1]
    try:
        return int(float(text) * factor)
    except ValueError as exc:
        raise ReproError(
            f"bad byte count {text!r}; expected e.g. 512M or 1073741824"
        ) from exc


def build_serve_parser() -> argparse.ArgumentParser:
    from .engine.service import (
        DEFAULT_COALESCE_MS,
        DEFAULT_MAX_BATCH,
        DEFAULT_MAX_SESSIONS,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the OPM simulation service: a long-lived daemon "
        "with warm LRU sessions and cross-request solve coalescing.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7777,
        help="TCP port (0 picks a free one; it is announced on stdout)",
    )
    parser.add_argument(
        "--coalesce-ms", type=float, default=DEFAULT_COALESCE_MS, metavar="MS",
        help="micro-batching window: how long a request waits for "
        "same-configuration company (default %(default)s ms)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=DEFAULT_MAX_BATCH, metavar="K",
        help="dispatch a batch once it holds this many runs "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=DEFAULT_MAX_SESSIONS, metavar="N",
        help="resident warm sessions before LRU eviction (default %(default)s)",
    )
    parser.add_argument(
        "--bank-entries", type=int, default=None, metavar="N",
        help="per-session pencil-cache entry bound (default: unbounded)",
    )
    parser.add_argument(
        "--bank-bytes", default=None, metavar="BYTES",
        help="per-session pencil-cache byte bound, e.g. 256M "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="shard batches of >= 16 runs across this many worker "
        "processes (default: solve in-process)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="solve-thread pool size (default %(default)s)",
    )
    return parser


def _run_serve(argv) -> int:
    from .engine.service import serve

    args = build_serve_parser().parse_args(argv)
    bank_bytes = (
        _parse_bytes(args.bank_bytes) if args.bank_bytes is not None else None
    )
    serve(
        host=args.host,
        port=args.port,
        coalesce_ms=args.coalesce_ms,
        max_batch=args.max_batch,
        max_sessions=args.max_sessions,
        bank_entries=args.bank_entries,
        bank_bytes=bank_bytes,
        jobs=args.jobs,
        workers=args.workers,
    )
    return 0


def build_client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro client",
        description="One-shot client for a running `python -m repro serve` "
        "daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="service address")
    parser.add_argument("--port", type=int, default=7777, help="service port")
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--netlist", type=Path, metavar="FILE",
        help="simulate this deck on the service",
    )
    action.add_argument(
        "--stats", action="store_true", help="print the daemon counters"
    )
    action.add_argument(
        "--ping", action="store_true", help="liveness probe"
    )
    action.add_argument(
        "--shutdown", action="store_true", help="stop the daemon"
    )
    parser.add_argument(
        "--scale", type=float, default=None, metavar="S",
        help="scale the deck's input waveform",
    )
    parser.add_argument(
        "--scales", type=float, nargs="+", default=None, metavar="S",
        help="sweep request: one batched solve per scale factor",
    )
    parser.add_argument(
        "--samples", type=int, default=None, metavar="N",
        help="number of output samples (default: the native grid)",
    )
    parser.add_argument(
        "--format", choices=("json", "csv"), default="json",
        help="response encoding (default json)",
    )
    parser.add_argument(
        "--memory", choices=("exact", "soe"), default=None,
        help="fractional-memory mode for the service session "
        "(default: the deck's .options memory= card, else exact)",
    )
    parser.add_argument(
        "--memory-rtol", type=float, default=None, metavar="TOL",
        help="certified bound the SOE kernel fit must meet",
    )
    parser.add_argument(
        "--csv", type=Path, metavar="FILE",
        help="write a --format csv response to this file",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="with --netlist: graph-lint the deck on the service instead of "
        "simulating it (exit 0 when clean, 1 with findings)",
    )
    return parser


def _run_client(argv) -> int:
    import json

    from .engine.service import ServiceClient

    args = build_client_parser().parse_args(argv)
    if args.lint and args.netlist is None:
        raise ReproError("--lint needs --netlist FILE (the deck to check)")
    with ServiceClient(args.host, args.port) as client:
        if args.ping:
            print("pong" if client.ping() else "no pong")
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.shutdown:
            client.shutdown()
            print("service shut down")
            return 0
        try:
            deck = args.netlist.read_text()
        except OSError as exc:
            raise ReproError(f"cannot read {args.netlist}: {exc}") from exc
        if args.lint:
            out = client.lint(deck)
            summary = out["summary"]
            print(
                f"{summary['nodes']} node(s), {summary['elements']} "
                f"element(s), {summary['components']} connected component(s)"
            )
            issues = out["report"]["issues"]
            if not issues:
                print("lint: clean")
                return 0
            for issue in issues:
                print(
                    f"lint: [{issue['code']}] {issue['message']} "
                    f"(fix: {issue['hint']})"
                )
            return 1
        request: dict = {"netlist": deck, "format": args.format}
        if args.scales is not None:
            request["scales"] = args.scales
        elif args.scale is not None:
            request["scale"] = args.scale
        if args.samples is not None:
            request["samples"] = args.samples
        if args.memory is not None:
            request["memory"] = args.memory
        if args.memory_rtol is not None:
            request["memory_rtol"] = args.memory_rtol
        out = client.simulate(**request)
        if args.format == "csv":
            if args.csv is not None:
                args.csv.write_text(out["csv"])
                print(f"wrote {out['rows']} samples to {args.csv}")
            else:
                print(out["csv"], end="")
        else:
            print(json.dumps(out, indent=2))
        print(
            f"# latency {out['latency_ms']:.2f} ms, method "
            f"{out['info'].get('method')}, warm={out['info'].get('warm')}, "
            f"coalesced={out['info'].get('coalesced')}",
            file=sys.stderr,
        )
    return 0


def run(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] in ("serve", "client"):
        mode, rest = argv[0], argv[1:]
        try:
            return _run_serve(rest) if mode == "serve" else _run_client(rest)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except BrokenPipeError:
            # stdout went away (e.g. piped into ``head``), which is not
            # a service failure: exit quietly with the conventional
            # SIGPIPE status, redirecting stdout so the interpreter's
            # exit-time flush cannot raise a second EPIPE
            try:
                devnull = os.open(os.devnull, os.O_WRONLY)
                os.dup2(devnull, sys.stdout.fileno())
            except OSError:
                pass  # stdout is not a real fd (captured stream)
            return 141
        except (ConnectionRefusedError, OSError) as exc:
            print(f"error: cannot reach the service: {exc}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            return 130
    args = build_parser().parse_args(argv)
    if args.netlist is not None and args.netlist_flag is not None:
        print(
            "error: pass the netlist either positionally or via --netlist, "
            "not both",
            file=sys.stderr,
        )
        return 2
    netlist_path = args.netlist if args.netlist is not None else args.netlist_flag
    if netlist_path is None:
        print("error: a netlist file is required (positional or --netlist)",
              file=sys.stderr)
        return 2
    try:
        text = netlist_path.read_text()
    except OSError as exc:
        print(f"error: cannot read {netlist_path}: {exc}", file=sys.stderr)
        return 2

    try:
        netlist = Netlist.from_spice(text, title=netlist_path.stem)
        if args.lint:
            # lint is purely structural: no horizon, no solve, so it
            # works on decks without a .tran card too
            return _run_lint(netlist)
        cli_windows = args.windows  # None unless --windows was passed
        _resolve_deck_defaults(args, netlist)
        run_ac = netlist.analysis.ac is not None
        if args.ac_csv is not None and not run_ac:
            raise ReproError(
                "--ac-csv requires an .ac card in the deck (nothing to write)"
            )
        if args.t_end is None:
            if not run_ac:
                raise ReproError(
                    "no horizon: pass --t-end or give the deck a .tran card"
                )
            # AC-only deck: transient-only CLI flags would be silently
            # dead (a .options windows= card is fine -- it only applies
            # once a transient runs, matching simulate_netlist)
            for flag, present in (
                ("--sweep", bool(args.sweep)),
                ("--windows", cli_windows is not None and cli_windows > 1),
                ("--event", bool(args.event)),
                ("--ensemble", args.ensemble is not None),
                ("--csv", args.csv is not None),
            ):
                if present:
                    raise ReproError(
                        f"{flag} drives a transient analysis, but the deck "
                        "has no .tran card and no --t-end was given"
                    )
        outputs = args.outputs if args.outputs else netlist.nodes
        system = build_system(netlist, outputs=outputs)
        code = 0
        if args.jobs is not None and args.jobs < 1:
            raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
        if (
            args.jobs is not None
            and args.ensemble is None
            and not args.sweep
            and not _component_split_applies(args, netlist)
        ):
            raise ReproError(
                "--jobs shards --ensemble members, a --sweep batch, or the "
                "independent sub-circuits of a multi-component deck; pass "
                "--ensemble/--sweep with it, or point it at a deck whose "
                "circuit graph has more than one connected component"
            )
        if args.t_end is not None:
            if args.ensemble is not None and (
                args.sweep or args.windows > 1 or args.event
            ):
                raise ReproError(
                    "--ensemble cannot be combined with --sweep/--windows/--event"
                )
            if args.sweep and (args.windows > 1 or args.event):
                raise ReproError("--sweep cannot be combined with --windows/--event")
            if args.ensemble is not None:
                code = _run_ensemble(args, netlist, system, outputs)
            elif args.sweep:
                code = _run_sweep(args, netlist, system, outputs)
            else:
                if args.event and args.windows < 2:
                    raise ReproError(
                        "--event fires at a window boundary: pass --windows K "
                        "(K >= 2) so event times can land strictly inside the "
                        "horizon"
                    )
                # method=opm-windowed marches even with one window,
                # matching simulate_netlist's routing exactly
                if args.windows > 1 or args.event or args.method == "opm-windowed":
                    events = [
                        _parse_event(tokens, netlist, outputs)
                        for tokens in args.event or ()
                    ]
                    code = _run_march(args, netlist, system, outputs, events)
                else:
                    code = _run_single(args, netlist, system, outputs)
        if run_ac and code == 0:
            _run_ac(args, netlist, system, outputs)
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(run())

"""Shared simulation engine: backends, cached sessions, batched sweeps.

This subsystem owns the input-independent machinery every OPM solver
shares, so that repeated-solve workloads amortise it across calls:

* :mod:`~repro.engine.backends` -- the dense/sparse linear-algebra
  backend protocol, automatic selection from system sparsity, the
  :class:`PencilBank` factorisation cache, and the array-API
  :class:`ArrayApiBackend` (numpy/CuPy/torch namespaces);
* :mod:`~repro.engine.array_api` -- array-API namespace resolution and
  the ``REPRO_ARRAY_BACKEND`` accelerator opt-in;
* :mod:`~repro.engine.reduction` -- certified model-order reduction at
  session bind: :class:`ReductionPlan` / :class:`ReducedModel`, the
  bind-time transfer-residual bound, and the per-run residual check
  behind ``Simulator(..., reduce=...)``;
* :mod:`~repro.engine.kernels` -- the triangular column-sweep kernels,
  all accepting batched (multi-RHS) right-hand sides;
* :mod:`~repro.engine.assembly` -- operational-operator construction
  with a process-wide coefficient memo;
* :mod:`~repro.engine.inputs` -- input-dialect normalisation and basis
  projection;
* :mod:`~repro.engine.bundle` -- the :class:`OperatorBundle` layer that
  makes every session basis-generic: family registry
  (:func:`basis_names` / :func:`resolve_basis`), cached operational
  matrices, and the hybrid-marching history operators;
* :mod:`~repro.engine.session` -- the :class:`Simulator` session object
  (bind system + grid once, ``run`` / ``sweep`` / ``march`` many
  times);
* :mod:`~repro.engine.sweep` -- the :class:`SweepResult` batched result
  container;
* :mod:`~repro.engine.marching` -- windowed time-marching over long
  horizons with state carry-over, fractional memory transfer, and
  mid-run :class:`Event` handling (input swaps, load steps, pencil
  re-stamps);
* :mod:`~repro.engine.executor` -- the parallel ensemble executor:
  :class:`Ensemble` specs (cartesian / seeded Monte-Carlo netlist
  variations), the :class:`ParallelExecutor` process/thread/serial
  sharding engine with fingerprint grouping and zero-copy
  shared-memory pencil shipping, and the :class:`EnsembleResult`
  container;
* :mod:`~repro.engine.netlist_session` -- the SPICE front door:
  netlist-native sessions (:meth:`Simulator.from_netlist`), ``.ac``
  sweeps, and the :func:`simulate_netlist` one-call driver executing a
  deck's analysis cards (loaded lazily: it sits above
  :mod:`repro.circuits`, which itself uses the engine backends).

The classic one-shot entry points in :mod:`repro.core` are thin
wrappers over this engine.
"""

from .array_api import ARRAY_BACKEND_ENV, KNOWN_ARRAY_BACKENDS, resolve_namespace
from .backends import (
    ArrayApiBackend,
    DenseBackend,
    PencilBank,
    SparseBackend,
    matrix_density,
    pencil_fingerprint,
    select_backend,
)
from .bundle import BASIS_FAMILIES, OperatorBundle, basis_names, resolve_basis
from .reduction import (
    AUTO_MIN_STATES,
    MOR_RESIDUAL_MARGIN,
    OffsetDescriptorSystem,
    ReducedModel,
    ReductionPlan,
    clear_model_cache,
)
from .executor import (
    EXECUTOR_BACKENDS,
    Ensemble,
    EnsembleChunk,
    EnsembleMember,
    EnsembleResult,
    ParallelExecutor,
)
from .inputs import normalise_input_callable, project_input
from .marching import Event
from .session import Simulator, resolve_grid
from .sweep import SweepResult

#: Names served lazily from :mod:`~repro.engine.netlist_session` (PEP
#: 562): that module imports :mod:`repro.circuits`, whose MNA assembler
#: imports :mod:`repro.engine.backends` -- an eager import here would
#: close the cycle while both packages are half-initialised.
_NETLIST_EXPORTS = (
    "simulate_netlist",
    "from_netlist",
    "ac_scan",
    "build_system",
    "AcScan",
    "NetlistRun",
)

#: Names served lazily from :mod:`~repro.engine.service` -- the daemon
#: sits above :mod:`netlist_session` (same cycle) and drags in asyncio
#: machinery no batch workload needs.
_SERVICE_EXPORTS = (
    "SimulationService",
    "ServiceClient",
    "serve",
)


def __getattr__(name: str):
    if name in _NETLIST_EXPORTS:
        from . import netlist_session

        return getattr(netlist_session, name)
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Simulator",
    "SweepResult",
    "Event",
    "Ensemble",
    "EnsembleMember",
    "EnsembleChunk",
    "EnsembleResult",
    "ParallelExecutor",
    "EXECUTOR_BACKENDS",
    "OperatorBundle",
    "BASIS_FAMILIES",
    "basis_names",
    "resolve_basis",
    "DenseBackend",
    "SparseBackend",
    "ArrayApiBackend",
    "PencilBank",
    "select_backend",
    "matrix_density",
    "pencil_fingerprint",
    "ARRAY_BACKEND_ENV",
    "KNOWN_ARRAY_BACKENDS",
    "resolve_namespace",
    "ReductionPlan",
    "ReducedModel",
    "OffsetDescriptorSystem",
    "AUTO_MIN_STATES",
    "MOR_RESIDUAL_MARGIN",
    "clear_model_cache",
    "project_input",
    "normalise_input_callable",
    "resolve_grid",
    "simulate_netlist",
    "from_netlist",
    "ac_scan",
    "build_system",
    "AcScan",
    "NetlistRun",
    "SimulationService",
    "ServiceClient",
    "serve",
]

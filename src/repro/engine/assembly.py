"""Operational-operator assembly shared by the engine and reference solvers.

The uniform-grid OPM sweep needs only the first-row Toeplitz
coefficients of ``D^alpha`` (paper eq. (22)); the adaptive sweep needs
the full upper-triangular matrix (eqs. (17)/(25)); the Kronecker
reference solver needs dense matrices for every order.  This module is
the one place those operators are built, with a process-wide memo on
the Toeplitz coefficients so repeated sessions on the same
``(alpha, m, h)`` signature skip the recurrence entirely.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..basis.grid import TimeGrid
from ..opmat.differential import differentiation_matrix_adaptive
from ..opmat.fractional import (
    fractional_differentiation_coefficients,
    fractional_differentiation_matrix,
    fractional_differentiation_matrix_adaptive,
)

__all__ = [
    "toeplitz_coefficients",
    "adaptive_operator",
    "dense_operator",
]


@lru_cache(maxsize=256)
def _cached_coefficients(alpha: float, m: int, h: float) -> np.ndarray:
    coeffs = fractional_differentiation_coefficients(alpha, m, h)
    coeffs.setflags(write=False)  # shared across sessions: freeze
    return coeffs


def toeplitz_coefficients(alpha: float, m: int, h: float) -> np.ndarray:
    """First-row coefficients of ``D^alpha`` on a uniform grid, memoised.

    Returns a read-only array shared by every caller with the same
    ``(alpha, m, h)`` signature (the memo holds the last 256 signatures).
    """
    return _cached_coefficients(float(alpha), int(m), float(h))


def adaptive_operator(
    grid: TimeGrid, alpha: float, *, adaptive_method: str = "auto"
) -> np.ndarray:
    """Upper-triangular ``D^alpha`` for an adaptive grid (paper eqs. (17)/(25)).

    ``adaptive_method`` selects the fractional matrix-power construction
    (``'auto'``/``'eig'``/``'schur'``); it is ignored for ``alpha = 1``.
    """
    if alpha == 1.0:
        return differentiation_matrix_adaptive(grid.steps)
    return fractional_differentiation_matrix_adaptive(
        alpha, grid.steps, method=adaptive_method
    )


def dense_operator(
    grid: TimeGrid, alpha: float, *, adaptive_method: str = "auto"
) -> np.ndarray:
    """Full dense ``D^alpha`` for any grid and order (Kronecker reference).

    Uniform grids use the series closed form (paper eq. (22)); adaptive
    grids the scaled/matrix-power constructions; ``alpha = 0`` is the
    identity.
    """
    if grid.is_uniform:
        return fractional_differentiation_matrix(alpha, grid.m, grid.h)
    if alpha == 0.0:
        return np.eye(grid.m)
    return adaptive_operator(grid, alpha, adaptive_method=adaptive_method)

"""Simulation-as-a-service: the long-running OPM solve daemon.

The paper's cost model -- one pencil factorisation plus matrix
products per transient -- makes concurrent requests that share a
circuit configuration embarrassingly coalescable: their right-hand
sides are just extra columns of the same multi-RHS sweep.  This module
turns that observation into a server:

* :class:`SimulationService` -- an asyncio TCP daemon speaking
  newline-delimited JSON.  Requests (netlist text or a programmatic
  system spec, plus analysis parameters) are keyed by the session
  :attr:`~repro.engine.session.Simulator.fingerprint`; a bounded LRU
  of warm :class:`~repro.engine.session.Simulator` sessions (each with
  a byte-bounded :class:`~repro.engine.backends.PencilBank`) is kept
  across requests, and a **coalescing scheduler** batches concurrent
  same-fingerprint requests inside a micro-batching window into one
  batched :meth:`~repro.engine.session.Simulator.sweep` -- one
  ``lu_solve`` per column for *all* waiting clients.  Solves run on a
  worker thread pool (LAPACK/SuperLU release the GIL); batches of at
  least :data:`~repro.engine.session.PARALLEL_SWEEP_MIN_COLUMNS`
  columns additionally shard across ``jobs`` worker *processes*
  through the :mod:`~repro.engine.executor` shared-memory machinery.
  Results stream back as chunked JSON or CSV; a ``stats`` op exposes
  cache hit rates, the coalesce ratio, queue depth, and p50/p99
  request latency.
* :class:`ServiceClient` -- the blocking socket client used by the CLI
  ``client`` mode, the load benchmark, and the CI smoke test.

Protocol
--------
One JSON object per line, both directions.  Request ``op`` values:

``simulate``
    ``{"op": "simulate", "netlist": "<deck>", "scale": 2.0}`` or
    ``{"op": "simulate", "system": {"E": [[...]], "A": [[...]],
    "B": [[...]]}, "grid": [1.0, 200], "input": 1.0}``.  Optional:
    ``basis``, ``backend``, ``grid`` (overrides the deck's ``.tran``),
    ``method`` (fractional-operator discretisation: ``"opm"`` or a zoo
    name -- ``"gl"`` / ``"oustaloup"`` / ``"jacobi"``; see
    :mod:`repro.fractional.methods`; typos fail with a did-you-mean
    suggestion), ``memory`` / ``memory_rtol`` (fractional-memory
    compression, see :mod:`repro.fractional.soe`),
    ``outputs`` (node names to return -- netlist requests only;
    default every node), ``scales`` (a list -- one request, many
    runs: a *sweep request*), ``samples`` (output sample count),
    ``values`` (``"outputs"`` / ``"states"``), ``format`` (``"json"``
    / ``"csv"``), ``id`` (echoed back).
``lint``
    ``{"op": "lint", "netlist": "<deck>"}``.  Parses and graph-lints
    the deck (floating nodes, missing DC paths; see
    :mod:`repro.circuits.graph`) without assembling or solving it,
    returning the issue report and the structural graph summary.
``stats``
    Returns the daemon counters (see above).
``ping`` / ``shutdown``
    Liveness probe / graceful stop (pending batches finish first).

A ``simulate`` response is a *header* line (``kind: "header"``, run
and sample counts, solver info), ``kind: "chunk"`` lines streaming the
sampled waveforms, and a ``kind: "done"`` line carrying the measured
request latency.  Errors are single ``kind: "error"`` lines; the
request ``id`` rides along on every line.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError, ServiceError
from .session import PARALLEL_SWEEP_MIN_COLUMNS, Simulator

__all__ = [
    "SimulationService",
    "ServiceClient",
    "serve",
    "DEFAULT_COALESCE_MS",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_SESSIONS",
]

#: Micro-batching window: a request waits at most this long for
#: same-fingerprint company before its batch is dispatched.
DEFAULT_COALESCE_MS = 2.0

#: Dispatch a batch as soon as it holds this many columns, window or not.
DEFAULT_MAX_BATCH = 64

#: Bound on distinct warm sessions kept resident (LRU beyond it).
DEFAULT_MAX_SESSIONS = 8

#: Samples streamed per chunk line.
CHUNK_ROWS = 512

#: Latencies kept for the p50/p99 window.
LATENCY_WINDOW = 4096


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays into JSON-safe values."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (empty -> 0)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[rank]


def _scaled_input(u, scale: float):
    """The input ``u`` (callable or coefficients) scaled by a factor."""
    if scale == 1.0:
        return u
    if callable(u):
        def scaled(times, _u=u, _s=scale):
            return _s * np.asarray(_u(times))

        return scaled
    if np.isscalar(u):
        return float(u) * scale
    return np.asarray(u, dtype=float) * scale


def _parse_system(spec: dict):
    """Build a descriptor system from a JSON system spec."""
    from ..core.lti import DescriptorSystem, FractionalDescriptorSystem

    if not isinstance(spec, dict):
        raise ServiceError(f"'system' must be an object, got {type(spec).__name__}")
    try:
        E = np.asarray(spec["E"], dtype=float)
        A = np.asarray(spec["A"], dtype=float)
        B = np.asarray(spec["B"], dtype=float)
    except KeyError as exc:
        raise ServiceError(f"system spec is missing {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad system matrix payload: {exc}") from exc
    x0 = spec.get("x0")
    if x0 is not None:
        x0 = np.asarray(x0, dtype=float)
    alpha = float(spec.get("alpha", 1.0))
    if alpha == 1.0:
        return DescriptorSystem(E, A, B, x0=x0)
    return FractionalDescriptorSystem(alpha, E, A, B, x0=x0)


def _validate_output_options(request: dict) -> None:
    """Reject bad per-request output options *before* the request joins
    a batch -- a malformed field must fail only its own request, never
    the coalesced siblings solved alongside it."""
    values_kind = request.get("values", "outputs")
    if values_kind not in ("outputs", "states"):
        raise ServiceError(
            f"'values' must be 'outputs' or 'states', got {values_kind!r}"
        )
    fmt = request.get("format", "json")
    if fmt not in ("json", "csv"):
        raise ServiceError(f"'format' must be 'json' or 'csv', got {fmt!r}")
    samples = request.get("samples")
    if samples is not None:
        try:
            if int(samples) < 1:
                raise ValueError(samples)
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                f"'samples' must be a positive integer, got {samples!r}"
            ) from exc


@dataclass
class _SessionSpec:
    """Everything needed to (re)build one session, plus its text key."""

    key: tuple
    netlist: str | None = None
    system: dict | None = None
    grid: tuple | None = None
    basis: str | None = None
    backend: str = "auto"
    outputs: tuple | None = None
    memory: str = "exact"
    memory_rtol: float | None = None
    method: str | None = None

    @classmethod
    def from_request(cls, request: dict) -> "_SessionSpec":
        netlist = request.get("netlist")
        system = request.get("system")
        if (netlist is None) == (system is None):
            raise ServiceError(
                "a simulate request needs exactly one of 'netlist' "
                "(deck text) or 'system' (an E/A/B spec)"
            )
        outputs = request.get("outputs")
        if outputs is not None:
            if netlist is None:
                raise ServiceError(
                    "'outputs' (node names) applies to netlist requests "
                    "only; a 'system' spec selects outputs through C"
                )
            if not isinstance(outputs, (list, tuple)) or not all(
                isinstance(name, str) for name in outputs
            ):
                raise ServiceError(
                    f"'outputs' must be a list of node names, got {outputs!r}"
                )
            outputs = tuple(outputs)
        grid = request.get("grid")
        if grid is not None:
            try:
                t_end, m = grid
                grid = (float(t_end), int(m))
            except (TypeError, ValueError) as exc:
                raise ServiceError(
                    f"'grid' must be a [t_end, m] pair, got {grid!r}"
                ) from exc
        elif system is not None:
            raise ServiceError("a 'system' request requires 'grid': [t_end, m]")
        basis = request.get("basis")
        backend = request.get("backend", "auto")
        memory = request.get("memory", "exact")
        if memory is None:
            memory = "exact"
        if not isinstance(memory, str):
            raise ServiceError(
                f"'memory' must be 'exact' or 'soe', got {memory!r}"
            )
        memory_rtol = request.get("memory_rtol")
        if memory_rtol is not None:
            try:
                memory_rtol = float(memory_rtol)
            except (TypeError, ValueError) as exc:
                raise ServiceError(
                    f"'memory_rtol' must be a number, got {memory_rtol!r}"
                ) from exc
        method = request.get("method")
        if method is not None:
            # a typo'd method must fail at request validation (with the
            # shared did-you-mean diagnostic), not on a worker thread
            from ..fractional.methods import validate_method_name

            method = validate_method_name(
                method, context="method", error=ServiceError
            )
            if method == "opm":
                method = None
        if netlist is not None:
            content: tuple = ("netlist", netlist)
        else:
            # key programmatic specs by content, not object identity
            content = ("system", json.dumps(system, sort_keys=True))
        return cls(
            key=(
                content, grid, basis, backend, outputs, memory, memory_rtol,
                method,
            ),
            netlist=netlist,
            system=system,
            grid=grid,
            basis=basis,
            backend=str(backend),
            outputs=outputs,
            memory=str(memory),
            memory_rtol=memory_rtol,
            method=method,
        )

    def build(self) -> Simulator:
        """Construct the session (runs on a worker thread)."""
        if self.netlist is not None:
            from .netlist_session import from_netlist

            # Only forward non-default memory settings so a deck-level
            # ``.options memory=`` card keeps winning by default.
            # Only forward non-default settings so deck-level
            # ``.options memory=`` / ``.options method=`` cards keep
            # winning by default.
            memory_kwargs: dict = {}
            if self.memory != "exact":
                memory_kwargs["memory"] = self.memory
            if self.memory_rtol is not None:
                memory_kwargs["memory_rtol"] = self.memory_rtol
            if self.method is not None:
                memory_kwargs["method"] = self.method
            return from_netlist(
                self.netlist,
                self.grid,
                outputs=self.outputs,
                basis=self.basis,
                backend=self.backend,
                **memory_kwargs,
            )
        sim = Simulator(
            _parse_system(self.system),
            self.grid,
            basis=self.basis,
            backend=self.backend,
            memory=self.memory,
            memory_rtol=self.memory_rtol,
            method=self.method,
        )
        return sim


@dataclass
class _Session:
    """One resident warm session and the request keys that found it."""

    sim: Simulator
    fingerprint: tuple
    spec_keys: set = field(default_factory=set)


@dataclass
class _Pending:
    """One enqueued simulate request (possibly a multi-run sweep)."""

    request: dict
    session: _Session
    inputs: list
    future: asyncio.Future
    start: float

    @property
    def n_runs(self) -> int:
        return len(self.inputs)


class SimulationService:
    """Asyncio TCP daemon with cross-request pencil coalescing.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    coalesce_ms:
        Micro-batching window in milliseconds: the first request for a
        session fingerprint opens the window, everything arriving for
        the same fingerprint before it closes joins the batch.
    max_batch:
        Dispatch a batch as soon as it holds this many run columns.
    max_sessions:
        Bound on resident warm sessions (least recently used evicted).
    bank_entries, bank_bytes:
        Per-session :meth:`PencilBank.limit
        <repro.engine.backends.PencilBank.limit>` bounds.
    jobs:
        When a dispatched batch has at least
        :data:`~repro.engine.session.PARALLEL_SWEEP_MIN_COLUMNS`
        columns, shard it across this many worker processes (the
        :mod:`~repro.engine.executor` shared-memory path).  ``None``
        keeps every batch in-process.
    workers:
        Solve-thread pool size (default 4).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        coalesce_ms: float = DEFAULT_COALESCE_MS,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        bank_entries: int | None = None,
        bank_bytes: int | None = None,
        jobs: int | None = None,
        workers: int = 4,
    ) -> None:
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        if max_sessions < 1:
            raise ServiceError(f"max_sessions must be >= 1, got {max_sessions}")
        self.host = host
        self._requested_port = port
        self.coalesce_ms = float(coalesce_ms)
        self.max_batch = int(max_batch)
        self.max_sessions = int(max_sessions)
        self.bank_entries = bank_entries
        self.bank_bytes = bank_bytes
        self.jobs = jobs
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, int(workers)), thread_name_prefix="repro-solve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

        # session LRU: fingerprint -> _Session, plus the text-level
        # shortcut that skips re-parsing a previously seen request spec
        self._sessions: OrderedDict[tuple, _Session] = OrderedDict()
        self._spec_to_fp: dict[tuple, tuple] = {}
        self._building: dict[tuple, asyncio.Future] = {}
        self._session_hits = 0
        self._session_misses = 0
        self._session_evictions = 0

        # coalescer: fingerprint -> waiting requests + window timer
        self._queues: dict[tuple, list[_Pending]] = {}
        self._flushers: dict[tuple, asyncio.Task] = {}

        self._requests = 0
        self._errors = 0
        self._batches = 0
        self._batched_runs = 0
        self._coalesced_batches = 0
        self._largest_batch = 0
        self._inflight = 0
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "SimulationService":
        """Bind the listening socket; returns ``self``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        return self

    async def serve_forever(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`stop`)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._shutdown.wait()
            await self._drain()

    async def stop(self) -> None:
        """Finish pending batches, close the server and the pool."""
        self._shutdown.set()
        await self._drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=True)

    async def _drain(self) -> None:
        """Flush every open coalescing window and await its batch."""
        for key in list(self._flushers):
            task = self._flushers.pop(key, None)
            if task is not None:
                task.cancel()
        flushes = [
            self._dispatch(key) for key in list(self._queues) if self._queues[key]
        ]
        if flushes:
            await asyncio.gather(*flushes, return_exceptions=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                request: dict = {}
                try:
                    decoded = json.loads(line)
                    if not isinstance(decoded, dict):
                        raise ServiceError("request must be a JSON object")
                    request = decoded
                    await self._handle_request(request, writer)
                except (json.JSONDecodeError, ReproError) as exc:
                    self._errors += 1
                    await self._send(
                        writer,
                        {
                            "id": request.get("id"),
                            "ok": False,
                            "kind": "error",
                            "error": str(exc),
                        },
                    )
        except (ConnectionResetError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer, payload: dict) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()

    async def _handle_request(self, request: dict, writer) -> None:
        op = request.get("op", "simulate")
        rid = request.get("id")
        if op == "ping":
            await self._send(writer, {"id": rid, "ok": True, "kind": "pong"})
        elif op == "stats":
            await self._send(
                writer,
                {"id": rid, "ok": True, "kind": "stats", "stats": self.stats()},
            )
        elif op == "shutdown":
            await self._send(writer, {"id": rid, "ok": True, "kind": "done"})
            self._shutdown.set()
        elif op == "lint":
            await self._lint(request, writer)
        elif op == "simulate":
            await self._simulate(request, writer)
        else:
            raise ServiceError(
                f"unknown op {op!r}; expected simulate/lint/stats/ping/shutdown"
            )

    async def _lint(self, request: dict, writer) -> None:
        """Graph-lint a deck without assembling or solving it.

        Returns a ``kind: "lint"`` line whose ``report`` is the
        :meth:`~repro.circuits.graph.LintReport.as_dict` payload
        (``ok`` plus per-issue code/message/nodes/elements/hint) and
        whose ``summary`` is the structural graph fingerprint.  A deck
        with defects is a *successful* lint -- the diagnostics ride in
        the report; only an unparseable deck errors.
        """
        from ..circuits.graph import CircuitGraph
        from .netlist_session import _as_netlist

        deck = request.get("netlist")
        if not isinstance(deck, str) or not deck.strip():
            raise ServiceError("lint request needs a 'netlist' deck string")
        graph = CircuitGraph(_as_netlist(deck))
        await self._send(
            writer,
            {
                "id": request.get("id"),
                "ok": True,
                "kind": "lint",
                "report": _jsonable(graph.lint().as_dict()),
                "summary": _jsonable(graph.summary()),
            },
        )

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    async def _resolve_session(self, spec: _SessionSpec) -> _Session:
        """Find (or build) the warm session for a request spec.

        Two cache levels: the spec key (raw request content) skips the
        parse/assemble entirely; the session fingerprint unifies
        distinct specs that describe the same arithmetic (same deck
        text with different whitespace-insensitive params, or a
        programmatic spec matching a netlist's model).
        """
        fp = self._spec_to_fp.get(spec.key)
        if fp is not None:
            session = self._sessions.get(fp)
            if session is not None:
                self._session_hits += 1
                self._sessions.move_to_end(fp)
                return session
            self._spec_to_fp.pop(spec.key, None)
        pending_build = self._building.get(spec.key)
        if pending_build is not None:
            session = await pending_build
            self._session_hits += 1
            return session

        loop = asyncio.get_running_loop()
        build_future: asyncio.Future = loop.create_future()
        self._building[spec.key] = build_future
        try:
            sim = await loop.run_in_executor(self._pool, spec.build)
            fp = sim.fingerprint
            session = self._sessions.get(fp)
            if session is None:
                if self.bank_entries is not None or self.bank_bytes is not None:
                    sim.limit_cache(
                        max_entries=self.bank_entries, max_bytes=self.bank_bytes
                    )
                session = _Session(sim=sim, fingerprint=fp)
                self._sessions[fp] = session
                self._session_misses += 1
                while len(self._sessions) > self.max_sessions:
                    _, evicted = self._sessions.popitem(last=False)
                    for key in evicted.spec_keys:
                        self._spec_to_fp.pop(key, None)
                    self._session_evictions += 1
            else:
                # distinct request text, identical arithmetic: the
                # existing warm session (and its pencil bank) serves it
                self._session_hits += 1
                self._sessions.move_to_end(fp)
            session.spec_keys.add(spec.key)
            self._spec_to_fp[spec.key] = fp
            build_future.set_result(session)
            return session
        except BaseException as exc:
            build_future.set_exception(exc)
            # consume the exception if nobody else awaited this build
            build_future.exception()
            raise
        finally:
            self._building.pop(spec.key, None)

    def _request_inputs(self, request: dict, session: _Session) -> list:
        """The run inputs one request contributes to its batch."""
        scales = request.get("scales")
        if scales is None:
            scales = [request.get("scale", 1.0)]
        if not isinstance(scales, (list, tuple)) or not scales:
            raise ServiceError(f"'scales' must be a non-empty list, got {scales!r}")
        u = request.get("input")
        if u is None:
            u = session.sim.bound_input
            if u is None:
                raise ServiceError(
                    "request has no 'input' and the session has no bound "
                    "source waveform (programmatic sessions need 'input')"
                )
        elif isinstance(u, (list, tuple)):
            u = np.asarray(u, dtype=float)
        elif not isinstance(u, (int, float)):
            raise ServiceError(
                f"'input' must be a number or a coefficient array, got "
                f"{type(u).__name__}"
            )
        try:
            return [_scaled_input(u, float(s)) for s in scales]
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"bad 'scale(s)' value: {exc}") from exc

    # ------------------------------------------------------------------
    # the coalescing scheduler
    # ------------------------------------------------------------------
    async def _simulate(self, request: dict, writer) -> None:
        start = time.perf_counter()
        self._requests += 1
        self._inflight += 1
        rid = request.get("id")
        try:
            _validate_output_options(request)
            spec = _SessionSpec.from_request(request)
            session = await self._resolve_session(spec)
            inputs = self._request_inputs(request, session)
            loop = asyncio.get_running_loop()
            pending = _Pending(
                request=request,
                session=session,
                inputs=inputs,
                future=loop.create_future(),
                start=start,
            )
            await self._enqueue(session.fingerprint, pending)
            payload = await pending.future
            await self._stream_result(writer, rid, pending, payload)
        except ReproError as exc:
            self._errors += 1
            await self._send(
                writer, {"id": rid, "ok": False, "kind": "error", "error": str(exc)}
            )
        finally:
            self._inflight -= 1

    async def _enqueue(self, key: tuple, pending: _Pending) -> None:
        """Queue a request under its fingerprint; open/close the window."""
        queue = self._queues.setdefault(key, [])
        queue.append(pending)
        total = sum(p.n_runs for p in queue)
        if total >= self.max_batch:
            flusher = self._flushers.pop(key, None)
            if flusher is not None:
                flusher.cancel()
            await self._dispatch(key)
        elif key not in self._flushers:
            self._flushers[key] = asyncio.ensure_future(self._window(key))

    async def _window(self, key: tuple) -> None:
        """The micro-batching window: sleep, then dispatch the batch."""
        try:
            await asyncio.sleep(self.coalesce_ms / 1000.0)
        except asyncio.CancelledError:
            return
        self._flushers.pop(key, None)
        await self._dispatch(key)

    async def _dispatch(self, key: tuple) -> None:
        """Hand the waiting batch for ``key`` to the solve pool."""
        batch = self._queues.pop(key, [])
        if not batch:
            return
        self._batches += 1
        n_runs = sum(p.n_runs for p in batch)
        self._batched_runs += n_runs
        self._largest_batch = max(self._largest_batch, n_runs)
        if len(batch) > 1:
            self._coalesced_batches += 1
        loop = asyncio.get_running_loop()
        try:
            payloads = await loop.run_in_executor(
                self._pool, self._solve_batch, batch
            )
        except Exception as exc:
            # a failed solve must fail its waiters, never hang them --
            # whatever the exception class
            for p in batch:
                if not p.future.done():
                    p.future.set_exception(
                        ServiceError(f"batched solve failed: {exc}")
                    )
            return
        for p, payload in zip(batch, payloads):
            if not p.future.done():
                p.future.set_result(payload)

    def _solve_batch(self, batch: list[_Pending]) -> list[dict]:
        """One batched multi-RHS solve for every queued request.

        Runs on a worker thread.  A single-run batch goes through
        ``run``; anything larger is one ``sweep`` (sharded across
        worker processes when large enough and ``jobs`` is set).
        """
        sim = batch[0].session.sim
        inputs = [u for p in batch for u in p.inputs]
        coalesced = len(batch) > 1
        if len(inputs) == 1:
            results = [sim.run(inputs[0])]
        else:
            jobs = (
                self.jobs
                if self.jobs and len(inputs) >= PARALLEL_SWEEP_MIN_COLUMNS
                else None
            )
            sweep = sim.sweep(inputs, jobs=jobs)
            results = list(sweep)
        payloads = []
        offset = 0
        for p in batch:
            runs = results[offset : offset + p.n_runs]
            offset += p.n_runs
            payloads.append(self._build_payload(p, runs, len(inputs), coalesced))
        return payloads

    def _build_payload(
        self, pending: _Pending, runs: list, batch_runs: int, coalesced: bool
    ) -> dict:
        """Sample one request's runs into its response payload."""
        request = pending.request
        samples = request.get("samples")
        if samples is not None:
            samples = int(samples)
        values_kind = request.get("values", "outputs")
        fmt = request.get("format", "json")
        sampled = []
        for res in runs:
            t = res.sample_times(samples) if samples else res.sample_times()
            v = res.outputs(t) if values_kind == "outputs" else res.states(t)
            sampled.append((t, np.asarray(v)))
        info = _jsonable(dict(runs[0].info))
        info["coalesced"] = coalesced
        info["batch_runs"] = batch_runs
        return {
            "sampled": sampled,
            "info": info,
            "format": fmt,
            "values": values_kind,
        }

    async def _stream_result(self, writer, rid, pending: _Pending, payload) -> None:
        """Header line, chunked samples, done line.

        Lines are buffered and flushed with one ``write``/``drain`` pair
        per ``CHUNK_ROWS`` of samples -- a syscall per *chunk*, not per
        protocol line, which matters at small-request load.
        """
        sampled = payload["sampled"]
        fmt = payload["format"]
        n_rows = int(sampled[0][0].size)
        n_cols = int(sampled[0][1].shape[0])
        buffered = [
            json.dumps(
                {
                    "id": rid,
                    "ok": True,
                    "kind": "header",
                    "runs": len(sampled),
                    "rows": n_rows,
                    "cols": n_cols,
                    "info": payload["info"],
                }
            ).encode()
        ]
        for run_index, (t, v) in enumerate(sampled):
            for lo in range(0, t.size, CHUNK_ROWS):
                hi = min(lo + CHUNK_ROWS, t.size)
                chunk: dict = {"id": rid, "kind": "chunk", "run": run_index}
                if fmt == "json":
                    chunk["t"] = t[lo:hi].tolist()
                    chunk["values"] = v[:, lo:hi].tolist()
                else:
                    lines = []
                    if lo == 0:
                        names = [
                            f"{payload['values'][:-1]}{j}" for j in range(v.shape[0])
                        ]
                        lines.append(",".join(["t"] + names))
                    for k in range(lo, hi):
                        lines.append(
                            ",".join(
                                [repr(float(t[k]))]
                                + [repr(float(v[j, k])) for j in range(v.shape[0])]
                            )
                        )
                    chunk["csv"] = "\n".join(lines) + "\n"
                buffered.append(json.dumps(chunk).encode())
                if hi - lo == CHUNK_ROWS:
                    writer.write(b"\n".join(buffered) + b"\n")
                    buffered = []
                    await writer.drain()
        latency_ms = (time.perf_counter() - pending.start) * 1e3
        self._latencies.append(latency_ms)
        buffered.append(
            json.dumps(
                {"id": rid, "kind": "done", "ok": True, "latency_ms": latency_ms}
            ).encode()
        )
        writer.write(b"\n".join(buffered) + b"\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The daemon counters: caches, coalescing, queue, latency."""
        bank = {
            "entries": 0,
            "nbytes": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "factorisations": 0,
        }
        for session in self._sessions.values():
            s = session.sim.bank.stats()
            for field_name in bank:
                bank[field_name] += s[field_name]
        ordered = sorted(self._latencies)
        return {
            "requests": self._requests,
            "errors": self._errors,
            "batches": self._batches,
            "batched_runs": self._batched_runs,
            "coalesced_batches": self._coalesced_batches,
            "largest_batch": self._largest_batch,
            "coalesce_ratio": (
                self._batched_runs / self._batches if self._batches else 0.0
            ),
            "queue_depth": self._inflight,
            "sessions": {
                "entries": len(self._sessions),
                "hits": self._session_hits,
                "misses": self._session_misses,
                "evictions": self._session_evictions,
                "max_sessions": self.max_sessions,
            },
            "bank": bank,
            "latency_ms": {
                "count": len(ordered),
                "mean": sum(ordered) / len(ordered) if ordered else 0.0,
                "p50": _percentile(ordered, 0.50),
                "p99": _percentile(ordered, 0.99),
            },
        }


async def _serve_async(service: SimulationService, *, announce) -> None:
    await service.start()
    if announce is not None:
        announce(service)
    try:
        await service.serve_forever()
    finally:
        await service.stop()


def serve(announce=print, **kwargs) -> None:
    """Run a :class:`SimulationService` until shutdown (blocking).

    ``announce`` (default: print) receives the started service, so
    callers binding ``port=0`` can learn the actual port; pass ``None``
    to silence it.  Keyword arguments go to :class:`SimulationService`.
    """
    service = SimulationService(**kwargs)
    if announce is print:
        def announce(svc):  # noqa: F811 - the default banner
            print(f"repro service listening on {svc.host}:{svc.port}", flush=True)

    asyncio.run(_serve_async(service, announce=announce))


class ServiceClient:
    """Blocking JSON-lines client for :class:`SimulationService`.

    >>> client = ServiceClient("127.0.0.1", 7777)       # doctest: +SKIP
    >>> out = client.simulate(netlist=deck, scale=2.0)  # doctest: +SKIP
    >>> out["values"][0][-1]                            # doctest: +SKIP
    """

    def __init__(self, host: str, port: int, *, timeout: float = 120.0) -> None:
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection((host, self.port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- plumbing ------------------------------------------------------
    def _round_trip(self, payload: dict) -> dict:
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        return self._read_line()

    def _read_line(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ServiceError("service closed the connection")
        reply = json.loads(line)
        if reply.get("kind") == "error" or reply.get("ok") is False:
            raise ServiceError(reply.get("error", "service error"))
        return reply

    # -- operations ----------------------------------------------------
    def ping(self) -> bool:
        """Liveness probe."""
        return self._round_trip({"op": "ping"})["kind"] == "pong"

    def stats(self) -> dict:
        """Fetch the daemon's cache/coalescing/latency counters."""
        return self._round_trip({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the daemon to stop (pending batches finish first)."""
        self._round_trip({"op": "shutdown"})

    def lint(self, netlist: str) -> dict:
        """Graph-lint a deck on the daemon (no assembly, no solve).

        Returns ``{"report": ..., "summary": ...}`` where ``report``
        carries ``ok`` and the issue list (code / message / nodes /
        elements / hint per defect) and ``summary`` the structural
        graph fingerprint.  Defective decks return normally -- the
        diagnostics are the payload; only an unparseable deck raises.
        """
        reply = self._round_trip({"op": "lint", "netlist": netlist})
        if reply.get("kind") != "lint":
            raise ServiceError(f"expected a lint reply, got {reply!r}")
        return {"report": reply["report"], "summary": reply["summary"]}

    def simulate(self, **request) -> dict:
        """One simulate round trip; assembles the chunked response.

        Accepts the request schema fields (``netlist`` / ``system`` +
        ``grid``, ``input``, ``scale`` / ``scales``, ``basis``,
        ``backend``, ``method``, ``memory`` / ``memory_rtol``,
        ``outputs``, ``samples``, ``values``, ``format``).  Returns a
        dict with ``info``, ``latency_ms``, and either ``runs`` (a list
        of ``{"t": [...], "values": [[...]]}`` per run, with ``t`` /
        ``values`` aliased to the first run) or ``csv`` text.
        """
        request["op"] = "simulate"
        header = self._round_trip(request)
        if header.get("kind") != "header":
            raise ServiceError(f"expected a header line, got {header!r}")
        runs = [
            {"t": [], "values": [[] for _ in range(header["cols"])], "csv": []}
            for _ in range(header["runs"])
        ]
        while True:
            reply = self._read_line()
            kind = reply.get("kind")
            if kind == "done":
                break
            if kind != "chunk":
                raise ServiceError(f"expected a chunk line, got {reply!r}")
            run = runs[reply.get("run", 0)]
            if "csv" in reply:
                run["csv"].append(reply["csv"])
            else:
                run["t"].extend(reply["t"])
                for row, new in zip(run["values"], reply["values"]):
                    row.extend(new)
        out = {
            "info": header["info"],
            "rows": header["rows"],
            "cols": header["cols"],
            "latency_ms": reply["latency_ms"],
        }
        if runs and runs[0]["csv"]:
            out["csv"] = "".join(part for run in runs for part in run["csv"])
        else:
            out["runs"] = [
                {"t": run["t"], "values": run["values"]} for run in runs
            ]
            out["t"] = out["runs"][0]["t"]
            out["values"] = out["runs"][0]["values"]
        return out

    def close(self) -> None:
        """Close the socket (also via the context-manager protocol)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

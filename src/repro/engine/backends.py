"""Linear-algebra backends for the simulation engine.

The OPM column sweep reduces every solver in this package to the same
two primitives: factorise a shifted pencil ``sigma E - A`` and apply
the factorisation to right-hand sides.  This module isolates those
primitives behind a small backend protocol so the rest of the engine is
storage-agnostic:

* :class:`DenseBackend` -- LAPACK LU (:func:`scipy.linalg.lu_factor`),
  best for small or genuinely dense systems;
* :class:`SparseBackend` -- SuperLU (:func:`scipy.sparse.linalg.splu`),
  keeps large ladder / power-grid MNA models ``scipy.sparse``
  end-to-end, never densifying the pencil;
* :func:`select_backend` -- automatic choice from the system's size and
  fill ratio (the paper's complexity analysis assumes ``O(n)`` nonzeros
  for circuit matrices, which is exactly when the sparse backend wins);
* :class:`PencilBank` -- the factorisation cache shared by every sweep:
  one LU per distinct shift ``sigma``, reused across columns, calls,
  and batched multi-RHS sweeps.

Both backends solve blocks of right-hand sides in one call
(``rhs`` of shape ``(n, k)``), which is what makes the engine's batched
multi-input sweep one ``lu_solve`` per column for *all* inputs.
"""

from __future__ import annotations

import abc
import warnings

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SolverError

__all__ = [
    "DenseBackend",
    "SparseBackend",
    "PencilBank",
    "select_backend",
    "matrix_density",
    "pencil_fingerprint",
]

#: Systems with at least this many states are eligible for the sparse
#: backend under ``mode='auto'`` (below it, dense LAPACK wins on
#: factorisation *and* per-column solve overhead).
SPARSE_SIZE_THRESHOLD = 128

#: Maximum fill ratio (nonzeros / n^2, over E and A together) at which
#: ``mode='auto'`` picks the sparse backend.
SPARSE_DENSITY_THRESHOLD = 0.25


def matrix_density(matrix) -> float:
    """Fill ratio ``nnz / n^2`` of a dense or scipy-sparse square matrix.

    Counts *actual* nonzero values (explicitly stored zeros in a sparse
    matrix do not inflate the ratio).
    """
    n = matrix.shape[0]
    if n == 0:
        return 0.0
    if sp.issparse(matrix):
        nnz = int(matrix.count_nonzero())
    else:
        nnz = int(np.count_nonzero(matrix))
    return nnz / float(n * n)


class PencilBackend(abc.ABC):
    """Storage-specific pencil operations ``sigma E - A``.

    Subclasses fix the storage format of ``E`` and ``A`` and implement
    factorisation and (multi-RHS) substitution.  Instances are cheap
    value objects; the expensive state (LU factors) lives in
    :class:`PencilBank`.
    """

    #: Short human-readable backend name (``'dense'`` / ``'sparse'``).
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """State dimension (number of pencil rows)."""

    @abc.abstractmethod
    def factorize(self, sigma: float):
        """Factorise the shifted pencil ``sigma E - A``.

        Returns an opaque handle for :meth:`solve`.

        Raises
        ------
        SolverError
            If the pencil is exactly singular.
        """

    @abc.abstractmethod
    def solve(self, handle, rhs: np.ndarray) -> np.ndarray:
        """Apply a factorisation to one (``(n,)``) or many (``(n, k)``)
        right-hand sides in a single substitution call."""

    @abc.abstractmethod
    def apply_E(self, x: np.ndarray) -> np.ndarray:
        """Matrix-vector/matrix product ``E @ x`` (used by history tails)."""


def _raise_singular(sigma: float, exc: Exception):
    raise SolverError(
        f"shifted pencil sigma*E - A is singular at sigma={sigma:g}"
    ) from exc


class DenseBackend(PencilBackend):
    """LAPACK-LU backend over dense ``numpy`` storage.

    Sparse inputs are densified on construction; use
    :func:`select_backend` to avoid that for large sparse models.
    """

    name = "dense"

    def __init__(self, E, A) -> None:
        self.E = E.toarray() if sp.issparse(E) else np.asarray(E, dtype=float)
        self.A = A.toarray() if sp.issparse(A) else np.asarray(A, dtype=float)

    @property
    def n(self) -> int:
        """State dimension (number of pencil rows)."""
        return self.E.shape[0]

    def factorize(self, sigma: float):
        """LU-factorise ``sigma E - A`` via :func:`scipy.linalg.lu_factor`."""
        pencil = sigma * self.E - self.A
        try:
            with warnings.catch_warnings():
                # scipy only *warns* on an exactly singular LU; promote
                # that to the typed error the finite-check would raise
                # anyway
                warnings.simplefilter("error", scipy.linalg.LinAlgWarning)
                return scipy.linalg.lu_factor(pencil)
        except (
            RuntimeError,
            ValueError,
            scipy.linalg.LinAlgError,
            scipy.linalg.LinAlgWarning,
        ) as exc:
            _raise_singular(sigma, exc)

    def solve(self, handle, rhs: np.ndarray) -> np.ndarray:
        """Back/forward substitution for ``(n,)`` or ``(n, k)`` right-hand sides."""
        return scipy.linalg.lu_solve(handle, rhs)

    def apply_E(self, x: np.ndarray) -> np.ndarray:
        """Dense product ``E @ x``."""
        return self.E @ x


class SparseBackend(PencilBackend):
    """SuperLU backend over ``scipy.sparse`` CSC storage.

    The pencil is assembled and factorised without ever densifying, so
    banded / mesh MNA models keep their ``O(n)`` storage end-to-end.
    """

    name = "sparse"

    def __init__(self, E, A) -> None:
        self.E = sp.csc_matrix(E)
        self.A = sp.csc_matrix(A)

    @property
    def n(self) -> int:
        """State dimension (number of pencil rows)."""
        return self.E.shape[0]

    def factorize(self, sigma: float):
        """Sparse-LU-factorise ``sigma E - A`` via :func:`scipy.sparse.linalg.splu`."""
        pencil = (sigma * self.E - self.A).tocsc()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", spla.MatrixRankWarning)
                return spla.splu(pencil)
        except (RuntimeError, ValueError, spla.MatrixRankWarning) as exc:
            _raise_singular(sigma, exc)

    def solve(self, handle, rhs: np.ndarray) -> np.ndarray:
        """SuperLU substitution for ``(n,)`` or ``(n, k)`` right-hand sides."""
        return handle.solve(rhs)

    def apply_E(self, x: np.ndarray) -> np.ndarray:
        """Sparse product ``E @ x`` (dense result)."""
        return self.E @ x


def select_backend(E, A, *, mode: str = "auto") -> PencilBackend:
    """Choose a pencil backend for the system matrices ``E``, ``A``.

    Parameters
    ----------
    E, A:
        Square system matrices, dense ndarray or scipy sparse.
    mode:
        ``'auto'`` -- sparse backend for systems with at least
        :data:`SPARSE_SIZE_THRESHOLD` states whose combined fill ratio
        is at most :data:`SPARSE_DENSITY_THRESHOLD` (regardless of the
        *storage* the caller happened to use); dense otherwise.
        ``'dense'`` / ``'sparse'`` force the choice.

    Returns
    -------
    PencilBackend
        A :class:`DenseBackend` or :class:`SparseBackend`.
    """
    if mode not in ("auto", "dense", "sparse"):
        raise SolverError(
            f"backend mode must be 'auto', 'dense' or 'sparse', got {mode!r}"
        )
    if mode == "dense":
        return DenseBackend(E, A)
    if mode == "sparse":
        return SparseBackend(E, A)
    n = E.shape[0]
    density = 0.5 * (matrix_density(E) + matrix_density(A))
    if n >= SPARSE_SIZE_THRESHOLD and density <= SPARSE_DENSITY_THRESHOLD:
        return SparseBackend(E, A)
    return DenseBackend(E, A)


def pencil_fingerprint(E, A=None) -> tuple:
    """Content-based key identifying the pencil pair ``(E, A)``.

    Two pencils with equal entries (in the same storage format) map to
    the same fingerprint, so re-stamping a previously seen circuit
    configuration (a switch toggled back open, say) reuses its cached
    factorisations instead of adding a new stamp.  Pass a single matrix
    to fingerprint it alone.
    """

    def one(matrix) -> tuple:
        if matrix is None:
            return ("none",)
        if sp.issparse(matrix):
            csr = matrix.tocsr()
            return (
                "sparse",
                csr.shape,
                csr.data.tobytes(),
                csr.indices.tobytes(),
                csr.indptr.tobytes(),
            )
        arr = np.ascontiguousarray(matrix, dtype=float)
        return ("dense", arr.shape, arr.tobytes())

    return (one(E), one(A))


class PencilBank:
    """Factorisation cache for shifted pencils ``sigma E - A``.

    Wraps a :class:`PencilBackend` and memoises one factorisation per
    distinct ``(pencil stamp, shift)`` pair.  The shift key is the exact
    float value of ``sigma``; adaptive controllers that reuse a ladder
    of step sizes (h, h/2, 2h, ...) hit the cache on every revisited
    step size, and a warm :class:`~repro.engine.session.Simulator`
    session hits it on every call.

    A bank starts with one *stamp* -- the backend it was built over.
    Mid-run events that change the system matrices (switch closures,
    load steps) register a new backend via :meth:`restamp`; every stamp
    keeps its factorisations, so toggling between circuit
    configurations re-factorises nothing after the first visit.
    """

    def __init__(self, backend: PencilBackend) -> None:
        self.backend = backend
        self._cache: dict[tuple[int, float], object] = {}
        self._backends: list[PencilBackend] = [backend]
        self._stamp_keys: dict[tuple, int] = {
            pencil_fingerprint(backend.E, backend.A): 0
        }
        self._stamp = 0

    @property
    def factorisations(self) -> int:
        """Number of distinct pencil factorisations performed so far."""
        return len(self._cache)

    @property
    def is_warm(self) -> bool:
        """True once at least one factorisation has been cached."""
        return bool(self._cache)

    @property
    def stamps(self) -> int:
        """Number of distinct pencils registered (1 + re-stamps to new matrices)."""
        return len(self._backends)

    @property
    def stamp(self) -> int:
        """Index of the currently active pencil stamp."""
        return self._stamp

    def restamp(self, backend: PencilBackend) -> int:
        """Switch the bank to a (possibly new) pencil; returns its stamp index.

        A pencil whose matrices fingerprint-match a previously
        registered stamp reactivates that stamp -- and its cached
        factorisations -- instead of registering a new one.
        """
        key = pencil_fingerprint(backend.E, backend.A)
        stamp = self._stamp_keys.get(key)
        if stamp is None:
            stamp = len(self._backends)
            self._backends.append(backend)
            self._stamp_keys[key] = stamp
        self._stamp = stamp
        self.backend = self._backends[stamp]
        return stamp

    def use(self, stamp: int) -> None:
        """Reactivate a previously registered stamp by index.

        Used to restore the bank's base configuration after a scoped
        excursion (an eventful march must not leave the session solving
        against the event pencil).
        """
        if not 0 <= stamp < len(self._backends):
            raise SolverError(
                f"unknown pencil stamp {stamp}; bank has {len(self._backends)}"
            )
        self._stamp = stamp
        self.backend = self._backends[stamp]

    def apply_E(self, x: np.ndarray) -> np.ndarray:
        """Product ``E @ x`` through the active backend (history-tail helper)."""
        return self.backend.apply_E(x)

    def solve(self, sigma: float, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(sigma E - A) x = rhs``, factorising at most once per
        ``(stamp, sigma)``.

        ``rhs`` may be a single vector ``(n,)`` or a block ``(n, k)``;
        blocks are substituted in one backend call.
        """
        key = (self._stamp, sigma)
        handle = self._cache.get(key)
        if handle is None:
            handle = self.backend.factorize(sigma)
            self._cache[key] = handle
        out = self.backend.solve(handle, rhs)
        if not np.all(np.isfinite(out)):
            raise SolverError(
                f"pencil solve at sigma={sigma:g} produced non-finite values "
                "(singular or extremely ill-conditioned pencil)"
            )
        return out

"""Linear-algebra backends for the simulation engine.

The OPM column sweep reduces every solver in this package to the same
two primitives: factorise a shifted pencil ``sigma E - A`` and apply
the factorisation to right-hand sides.  This module isolates those
primitives behind a small backend protocol so the rest of the engine is
storage-agnostic:

* :class:`DenseBackend` -- LAPACK LU (:func:`scipy.linalg.lu_factor`),
  best for small or genuinely dense systems;
* :class:`SparseBackend` -- SuperLU (:func:`scipy.sparse.linalg.splu`),
  keeps large ladder / power-grid MNA models ``scipy.sparse``
  end-to-end, never densifying the pencil;
* :func:`select_backend` -- automatic choice from the system's size and
  fill ratio (the paper's complexity analysis assumes ``O(n)`` nonzeros
  for circuit matrices, which is exactly when the sparse backend wins);
* :class:`ArrayApiBackend` -- dense pencil operations through any
  `array API standard <https://data-apis.org/array-api/latest/>`_
  namespace (``numpy`` always; ``cupy``/``torch`` when installed), so
  batched sweeps can run on an accelerator without custom kernels;
  opt in per call (``mode='cupy'``) or process-wide via the
  ``REPRO_ARRAY_BACKEND`` environment variable;
* :class:`PencilBank` -- the factorisation cache shared by every sweep:
  one LU per distinct shift ``sigma``, reused across columns, calls,
  and batched multi-RHS sweeps.

Both backends solve blocks of right-hand sides in one call
(``rhs`` of shape ``(n, k)``), which is what makes the engine's batched
multi-input sweep one ``lu_solve`` per column for *all* inputs.
"""

from __future__ import annotations

import abc
import threading
import warnings
from collections import OrderedDict

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SingularPencilError, SolverError
from .array_api import KNOWN_ARRAY_BACKENDS, env_backend, resolve_namespace
from .array_api import to_host as _array_to_host

__all__ = [
    "DenseBackend",
    "SparseBackend",
    "ArrayApiBackend",
    "PencilBank",
    "select_backend",
    "matrix_density",
    "pencil_fingerprint",
    "handle_nbytes",
]

#: Systems with at least this many states are eligible for the sparse
#: backend under ``mode='auto'`` (below it, dense LAPACK wins on
#: factorisation *and* per-column solve overhead).
SPARSE_SIZE_THRESHOLD = 128

#: Maximum fill ratio (nonzeros / n^2, over E and A together) at which
#: ``mode='auto'`` picks the sparse backend.
SPARSE_DENSITY_THRESHOLD = 0.25


def matrix_density(matrix) -> float:
    """Fill ratio ``nnz / n^2`` of a dense or scipy-sparse square matrix.

    Counts *actual* nonzero values: the matrix is canonicalised first,
    so explicitly stored zeros and duplicate entries that sum to zero
    (both routine in incrementally stamped COO circuit matrices) do not
    inflate the ratio.  Without the canonicalisation an ``E`` stamped
    with explicit zeros and an ``A`` stamped clean would be probed
    inconsistently and could flip the ``auto`` dense/sparse decision.
    """
    n = matrix.shape[0]
    if n == 0:
        return 0.0
    if sp.issparse(matrix):
        # CSR conversion sums duplicates; count_nonzero then skips any
        # stored zeros (cancelled duplicates included)
        nnz = int(matrix.tocsr().count_nonzero())
    else:
        nnz = int(np.count_nonzero(matrix))
    return nnz / float(n * n)


class PencilBackend(abc.ABC):
    """Storage-specific pencil operations ``sigma E - A``.

    Subclasses fix the storage format of ``E`` and ``A`` and implement
    factorisation and (multi-RHS) substitution.  Instances are cheap
    value objects; the expensive state (LU factors) lives in
    :class:`PencilBank`.
    """

    #: Short human-readable backend name (``'dense'`` / ``'sparse'``).
    name: str = "abstract"

    #: Array namespace the backend's solves live in (host backends:
    #: numpy).  Kernels allocate their work arrays through this.
    xp = np

    #: True when :meth:`solve` returns host ``numpy`` arrays.  Non-host
    #: backends (device array-API namespaces) require the caller to
    #: wrap sweeps in :meth:`prepare_rhs` / :meth:`to_host`.
    is_host: bool = True

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """State dimension (number of pencil rows)."""

    def prepare_rhs(self, rhs):
        """Stage a host right-hand-side block for this backend's solves
        (device backends transfer it into their namespace)."""
        return np.asarray(rhs, dtype=float)

    def to_host(self, x) -> np.ndarray:
        """Bring a solve result back to a host ``numpy`` array."""
        return np.asarray(x)

    def all_finite(self, x) -> bool:
        """Whether every entry of a solve result is finite (evaluated
        in the backend's own namespace -- no device transfer)."""
        return bool(np.all(np.isfinite(x)))

    @abc.abstractmethod
    def factorize(self, sigma: float):
        """Factorise the shifted pencil ``sigma E - A``.

        Returns an opaque handle for :meth:`solve`.

        Raises
        ------
        SingularPencilError
            If the pencil is exactly singular.
        """

    @abc.abstractmethod
    def solve(self, handle, rhs: np.ndarray) -> np.ndarray:
        """Apply a factorisation to one (``(n,)``) or many (``(n, k)``)
        right-hand sides in a single substitution call."""

    def column_solver(self, handle):
        """Bound substitution callable for tight per-column sweeps.

        Returns a function ``rhs -> x`` over a captured factorisation
        handle.  Backends may shed per-call validation (the caller owns
        the finite check for the whole sweep), but the arithmetic must
        stay bit-identical to :meth:`solve`.
        """
        return lambda rhs: self.solve(handle, rhs)

    @abc.abstractmethod
    def apply_E(self, x: np.ndarray) -> np.ndarray:
        """Matrix-vector/matrix product ``E @ x`` (used by history tails)."""


def _raise_singular(sigma: float, exc: Exception | None):
    raise SingularPencilError(
        f"shifted pencil sigma*E - A is singular at sigma={sigma:g}; "
        "for circuit models this usually means a structural defect -- "
        "a floating node, no conductive path to ground, or a missing "
        "ground reference -- run the graph lint "
        "(CircuitGraph(netlist).lint(), or `python -m repro --lint deck.cir`) "
        "to see the offending nodes and elements"
    ) from exc


class DenseBackend(PencilBackend):
    """LAPACK-LU backend over dense ``numpy`` storage.

    Sparse inputs are densified on construction; use
    :func:`select_backend` to avoid that for large sparse models.
    """

    name = "dense"

    def __init__(self, E, A) -> None:
        self.E = E.toarray() if sp.issparse(E) else np.asarray(E, dtype=float)
        self.A = A.toarray() if sp.issparse(A) else np.asarray(A, dtype=float)

    @property
    def n(self) -> int:
        """State dimension (number of pencil rows)."""
        return self.E.shape[0]

    def factorize(self, sigma: float):
        """LU-factorise ``sigma E - A`` via :func:`scipy.linalg.lu_factor`."""
        pencil = sigma * self.E - self.A
        try:
            with warnings.catch_warnings():
                # scipy only *warns* on an exactly singular LU; promote
                # that to the typed error the finite-check would raise
                # anyway
                warnings.simplefilter("error", scipy.linalg.LinAlgWarning)
                return scipy.linalg.lu_factor(pencil)
        except (
            RuntimeError,
            ValueError,
            scipy.linalg.LinAlgError,
            scipy.linalg.LinAlgWarning,
        ) as exc:
            _raise_singular(sigma, exc)

    def solve(self, handle, rhs: np.ndarray) -> np.ndarray:
        """Back/forward substitution for ``(n,)`` or ``(n, k)`` right-hand sides."""
        return scipy.linalg.lu_solve(handle, rhs)

    def column_solver(self, handle):
        """Direct ``getrs`` substitution with the LAPACK routine bound
        once -- ``lu_solve`` minus its per-call wrapper and finite
        check, bit-identical output (same routine, same arguments)."""
        lu, piv = handle
        (getrs,) = scipy.linalg.get_lapack_funcs(("getrs",), (lu,))

        def solve(rhs: np.ndarray) -> np.ndarray:
            x, info = getrs(lu, piv, rhs)
            if info != 0:
                raise SolverError(
                    f"LU substitution failed with LAPACK info={info}"
                )
            return x

        return solve

    def apply_E(self, x: np.ndarray) -> np.ndarray:
        """Dense product ``E @ x``."""
        return self.E @ x


class SparseBackend(PencilBackend):
    """SuperLU backend over ``scipy.sparse`` CSC storage.

    The pencil is assembled and factorised without ever densifying, so
    banded / mesh MNA models keep their ``O(n)`` storage end-to-end.
    """

    name = "sparse"

    def __init__(self, E, A) -> None:
        self.E = sp.csc_matrix(E)
        self.A = sp.csc_matrix(A)

    @property
    def n(self) -> int:
        """State dimension (number of pencil rows)."""
        return self.E.shape[0]

    def factorize(self, sigma: float):
        """Sparse-LU-factorise ``sigma E - A`` via :func:`scipy.sparse.linalg.splu`."""
        pencil = (sigma * self.E - self.A).tocsc()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", spla.MatrixRankWarning)
                return spla.splu(pencil)
        except (RuntimeError, ValueError, spla.MatrixRankWarning) as exc:
            _raise_singular(sigma, exc)

    def solve(self, handle, rhs: np.ndarray) -> np.ndarray:
        """SuperLU substitution for ``(n,)`` or ``(n, k)`` right-hand sides."""
        return handle.solve(rhs)

    def column_solver(self, handle):
        """SuperLU substitution bound to the handle, no wrapper layer."""
        return handle.solve

    def apply_E(self, x: np.ndarray) -> np.ndarray:
        """Sparse product ``E @ x`` (dense result)."""
        return self.E @ x


class ArrayApiBackend(PencilBackend):
    """Dense pencil operations through an array-API-standard namespace.

    The factorisation handle is the *explicit inverse* of the shifted
    pencil: a one-time ``O(n^3)`` ``linalg.inv`` turns every subsequent
    multi-RHS column solve into a single GEMM -- the primitive
    accelerators are built around (substitution-style ``lu_solve`` is
    latency-bound on a GPU, a batched GEMM is throughput-bound).  On
    the host this trades a little accuracy headroom for the portable
    code path, which is why :class:`DenseBackend` stays the default;
    the numpy namespace here is primarily the CI-testable contract for
    the CuPy/torch device paths.

    ``E``/``A`` are densified into the target namespace on
    construction; right-hand sides transfer per solve block (one
    host-to-device copy per sweep, amortised over all ``m`` columns by
    :meth:`prepare_rhs`).
    """

    def __init__(self, E, A, *, namespace: str = "numpy") -> None:
        self.xp, backend_name = resolve_namespace(namespace)
        self.name = f"array-api[{backend_name}]"
        self.backend_name = backend_name
        self.is_host = self.xp is np
        E = E.toarray() if sp.issparse(E) else np.asarray(E, dtype=float)
        A = A.toarray() if sp.issparse(A) else np.asarray(A, dtype=float)
        self.E = self.xp.asarray(E, dtype=self.xp.float64)
        self.A = self.xp.asarray(A, dtype=self.xp.float64)

    @property
    def n(self) -> int:
        """State dimension (number of pencil rows)."""
        return int(self.E.shape[0])

    def factorize(self, sigma: float):
        """Invert ``sigma E - A`` in the backend namespace.

        Singularity surfaces either as the namespace's own error or as
        non-finite entries (device solvers may return garbage instead
        of raising); both become the engine's typed error.
        """
        xp = self.xp
        pencil = sigma * self.E - self.A
        try:
            inverse = xp.linalg.inv(pencil)
        except Exception as exc:  # LinAlgError / RuntimeError, per library
            _raise_singular(sigma, exc)
        if not self.all_finite(inverse):
            _raise_singular(sigma, None)
        return inverse

    def solve(self, handle, rhs):
        """One GEMM per multi-RHS block: ``x = (sigma E - A)^{-1} rhs``."""
        return handle @ rhs

    def apply_E(self, x):
        """Product ``E @ x`` in the backend namespace."""
        return self.E @ x

    def prepare_rhs(self, rhs):
        """Transfer a host right-hand-side block into the namespace."""
        return self.xp.asarray(np.asarray(rhs, dtype=float), dtype=self.xp.float64)

    def to_host(self, x) -> np.ndarray:
        """Transfer a solve result back to a host ``numpy`` array."""
        return _array_to_host(x)

    def all_finite(self, x) -> bool:
        """Finite check evaluated in the backend namespace (the scalar
        reduction is the only device synchronisation point)."""
        xp = self.xp
        return bool(xp.all(xp.isfinite(x)))


def select_backend(E, A, *, mode: str = "auto", allow_env: bool = True) -> PencilBackend:
    """Choose a pencil backend for the system matrices ``E``, ``A``.

    Parameters
    ----------
    E, A:
        Square system matrices, dense ndarray or scipy sparse.
    allow_env:
        Honour the ``REPRO_ARRAY_BACKEND`` opt-in under ``'auto'``
        (default).  Host-only callers (the spectral Kronecker and
        multi-term plans, whose operators must never be densified into
        a device namespace) pass ``False``.
    mode:
        ``'auto'`` -- sparse backend for systems with at least
        :data:`SPARSE_SIZE_THRESHOLD` states whose combined fill ratio
        is at most :data:`SPARSE_DENSITY_THRESHOLD` (regardless of the
        *storage* the caller happened to use); dense otherwise.  When
        the ``REPRO_ARRAY_BACKEND`` environment variable names an
        array-API backend, ``'auto'`` dispatches to it instead (the
        process-wide accelerator opt-in).
        ``'dense'`` / ``'sparse'`` force the classic choice; an
        array-API backend name (``'numpy'``, ``'cupy'``, ``'torch'``)
        forces an :class:`ArrayApiBackend` over that namespace.

    Returns
    -------
    PencilBackend
        A :class:`DenseBackend`, :class:`SparseBackend`, or
        :class:`ArrayApiBackend`.
    """
    array_modes = KNOWN_ARRAY_BACKENDS + tuple(
        f"array-api:{name}" for name in KNOWN_ARRAY_BACKENDS
    )
    if mode in array_modes:
        return ArrayApiBackend(E, A, namespace=mode)
    if mode not in ("auto", "dense", "sparse"):
        raise SolverError(
            f"backend mode must be 'auto', 'dense', 'sparse', or an "
            f"array-API backend name {KNOWN_ARRAY_BACKENDS}, got {mode!r}"
        )
    if mode == "dense":
        return DenseBackend(E, A)
    if mode == "sparse":
        return SparseBackend(E, A)
    env = env_backend() if allow_env else None
    if env is not None:
        return ArrayApiBackend(E, A, namespace=env)
    n = E.shape[0]
    density = 0.5 * (matrix_density(E) + matrix_density(A))
    if n >= SPARSE_SIZE_THRESHOLD and density <= SPARSE_DENSITY_THRESHOLD:
        return SparseBackend(E, A)
    return DenseBackend(E, A)


def pencil_fingerprint(E, A=None) -> tuple:
    """Content-based key identifying the pencil pair ``(E, A)``.

    Two pencils with equal entries (in the same storage format) map to
    the same fingerprint, so re-stamping a previously seen circuit
    configuration (a switch toggled back open, say) reuses its cached
    factorisations instead of adding a new stamp.  Pass a single matrix
    to fingerprint it alone.
    """

    def one(matrix) -> tuple:
        if matrix is None:
            return ("none",)
        if sp.issparse(matrix):
            csr = matrix.tocsr()
            return (
                "sparse",
                csr.shape,
                csr.data.tobytes(),
                csr.indices.tobytes(),
                csr.indptr.tobytes(),
            )
        arr = np.ascontiguousarray(matrix, dtype=float)
        return ("dense", arr.shape, arr.tobytes())

    return (one(E), one(A))


def handle_nbytes(handle, n: int) -> int:
    """Estimated resident bytes of one factorisation handle.

    Covers the three handle species the backends produce -- a dense
    ``(lu, piv)`` pair, a SuperLU object (``L``/``U`` CSC factors plus
    the two permutation vectors), and an explicit-inverse array-API
    handle -- with a dense ``n^2`` float64 fallback for anything
    unrecognised, so the byte accounting errs on the safe (large) side.
    """
    if isinstance(handle, tuple):  # scipy.linalg.lu_factor: (lu, piv)
        return int(sum(getattr(part, "nbytes", 0) for part in handle))
    nbytes = getattr(handle, "nbytes", None)
    if nbytes is not None:  # array-API explicit inverse
        return int(nbytes)
    L, U = getattr(handle, "L", None), getattr(handle, "U", None)
    if L is not None and U is not None:  # SuperLU
        total = 0
        for factor in (L, U):
            for name in ("data", "indices", "indptr"):
                total += int(getattr(getattr(factor, name, None), "nbytes", 0))
        return total + 2 * n * np.dtype(np.intc).itemsize  # perm_r, perm_c
    return n * n * np.dtype(float).itemsize


class PencilBank:
    """Bounded LRU factorisation cache for shifted pencils ``sigma E - A``.

    Wraps a :class:`PencilBackend` and memoises one factorisation per
    distinct ``(pencil stamp, shift)`` pair.  The shift key is the exact
    float value of ``sigma``; adaptive controllers that reuse a ladder
    of step sizes (h, h/2, 2h, ...) hit the cache on every revisited
    step size, and a warm :class:`~repro.engine.session.Simulator`
    session hits it on every call.

    A bank starts with one *stamp* -- the backend it was built over.
    Mid-run events that change the system matrices (switch closures,
    load steps) register a new backend via :meth:`restamp`; every stamp
    keeps its factorisations, so toggling between circuit
    configurations re-factorises nothing after the first visit.

    By default the cache is unbounded (the classic single-session
    behaviour: a handful of shifts, each expensive to recompute).
    Long-lived processes -- the ``serve`` daemon above all -- bound it
    with ``max_entries`` / ``max_bytes`` (see :meth:`limit`): least
    recently *used* factorisations are evicted first, byte usage is
    tracked per handle (:func:`handle_nbytes`), and :attr:`hits` /
    :attr:`misses` / :attr:`evictions` counters make the hit-rate
    observable.  The bank is thread-safe: one internal lock serialises
    cache mutation, stamp switching, and the solve itself, so
    concurrent sessions sharing a bank cannot corrupt it or factorise
    against a stale stamp.
    """

    def __init__(
        self,
        backend: PencilBackend,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        self.backend = backend
        self._cache: OrderedDict[tuple[int, float], object] = OrderedDict()
        self._handle_bytes: dict[tuple[int, float], int] = {}
        self._backends: list[PencilBackend] = [backend]
        self._stamp_keys: dict[tuple, int] = {
            pencil_fingerprint(backend.E, backend.A): 0
        }
        self._stamp = 0
        self._lock = threading.RLock()
        self._factorisations = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._nbytes = 0
        self.limit(max_entries=max_entries, max_bytes=max_bytes)

    # ------------------------------------------------------------------
    # bounds and accounting
    # ------------------------------------------------------------------
    def limit(
        self, *, max_entries: int | None = None, max_bytes: int | None = None
    ) -> "PencilBank":
        """(Re)bound the cache; evicts immediately if already over.

        ``None`` leaves the corresponding bound unlimited.  Returns
        ``self`` for chaining.
        """
        if max_entries is not None and int(max_entries) < 1:
            raise SolverError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and int(max_bytes) < 0:
            raise SolverError(f"max_bytes must be >= 0, got {max_bytes}")
        with self._lock:
            self.max_entries = None if max_entries is None else int(max_entries)
            self.max_bytes = None if max_bytes is None else int(max_bytes)
            self._evict(keep=None)
        return self

    def _over_budget(self) -> bool:
        if self.max_entries is not None and len(self._cache) > self.max_entries:
            return True
        return self.max_bytes is not None and self._nbytes > self.max_bytes

    def _evict(self, keep: tuple[int, float] | None) -> None:
        """Drop least-recently-used handles until within budget.

        The handle named by ``keep`` (the one about to be returned to a
        caller) is never evicted, even when it alone exceeds
        ``max_bytes`` -- a bound can shrink the cache, not refuse the
        solve in flight.
        """
        while self._over_budget():
            oldest = next(iter(self._cache))
            if oldest == keep:
                if len(self._cache) == 1:
                    break
                self._cache.move_to_end(oldest)
                oldest = next(iter(self._cache))
                if oldest == keep:  # pragma: no cover - single survivor
                    break
            self._cache.pop(oldest)
            self._nbytes -= self._handle_bytes.pop(oldest, 0)
            self._evictions += 1

    @property
    def factorisations(self) -> int:
        """Number of pencil factorisations performed so far (monotone:
        an evicted-then-revisited shift counts again)."""
        return self._factorisations

    @property
    def entries(self) -> int:
        """Number of factorisations currently resident in the cache."""
        return len(self._cache)

    @property
    def nbytes(self) -> int:
        """Estimated resident bytes of all cached factorisations."""
        return self._nbytes

    @property
    def hits(self) -> int:
        """Solves served from a cached factorisation."""
        return self._hits

    @property
    def misses(self) -> int:
        """Solves that had to factorise first."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Factorisations dropped by the LRU bound so far."""
        return self._evictions

    def stats(self) -> dict:
        """Cache counters as one dict (the ``serve`` stats endpoint)."""
        with self._lock:
            return {
                "entries": len(self._cache),
                "nbytes": self._nbytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "factorisations": self._factorisations,
                "stamps": len(self._backends),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
            }

    @property
    def is_warm(self) -> bool:
        """True once at least one factorisation has been cached."""
        return bool(self._cache)

    @property
    def stamps(self) -> int:
        """Number of distinct pencils registered (1 + re-stamps to new matrices)."""
        return len(self._backends)

    @property
    def stamp(self) -> int:
        """Index of the currently active pencil stamp."""
        return self._stamp

    @property
    def cached_shifts(self) -> list[tuple[int, float]]:
        """Resident ``(stamp, sigma)`` keys, least recently used first."""
        with self._lock:
            return list(self._cache)

    def restamp(self, backend: PencilBackend) -> int:
        """Switch the bank to a (possibly new) pencil; returns its stamp index.

        A pencil whose matrices fingerprint-match a previously
        registered stamp reactivates that stamp -- and its cached
        factorisations -- instead of registering a new one.
        """
        key = pencil_fingerprint(backend.E, backend.A)
        with self._lock:
            stamp = self._stamp_keys.get(key)
            if stamp is None:
                stamp = len(self._backends)
                self._backends.append(backend)
                self._stamp_keys[key] = stamp
            self._stamp = stamp
            self.backend = self._backends[stamp]
            return stamp

    def use(self, stamp: int) -> None:
        """Reactivate a previously registered stamp by index.

        Used to restore the bank's base configuration after a scoped
        excursion (an eventful march must not leave the session solving
        against the event pencil).
        """
        with self._lock:
            if not 0 <= stamp < len(self._backends):
                raise SolverError(
                    f"unknown pencil stamp {stamp}; bank has {len(self._backends)}"
                )
            self._stamp = stamp
            self.backend = self._backends[stamp]

    def apply_E(self, x: np.ndarray) -> np.ndarray:
        """Product ``E @ x`` through the active backend (history-tail helper)."""
        return self.backend.apply_E(x)

    def solve(self, sigma: float, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(sigma E - A) x = rhs``, factorising at most once per
        ``(stamp, sigma)`` while it stays resident.

        ``rhs`` may be a single vector ``(n,)`` or a block ``(n, k)``;
        blocks are substituted in one backend call.  The whole solve
        runs under the bank lock, so a concurrent :meth:`restamp`
        cannot swap the active pencil out from under the substitution.
        """
        with self._lock:
            key = (self._stamp, sigma)
            handle = self._cache.get(key)
            if handle is None:
                self._misses += 1
                handle = self.backend.factorize(sigma)
                self._factorisations += 1
                self._cache[key] = handle
                self._handle_bytes[key] = handle_nbytes(handle, self.backend.n)
                self._nbytes += self._handle_bytes[key]
                self._evict(keep=key)
            else:
                self._hits += 1
                self._cache.move_to_end(key)
            out = self.backend.solve(handle, rhs)
        if not self.backend.all_finite(out):
            raise SingularPencilError(
                f"pencil solve at sigma={sigma:g} produced non-finite values "
                "(singular or extremely ill-conditioned pencil); for circuit "
                "models, run the graph lint (CircuitGraph(netlist).lint()) "
                "to check for floating nodes or a missing ground reference"
            )
        return out

    def solver(self, sigma: float):
        """Bound fast-path solver for one shift: ``rhs -> x``.

        Resolves the ``(stamp, sigma)`` factorisation once (counting a
        single bank hit or miss) and returns the backend's
        :meth:`~PencilBackend.column_solver` over it, so tight column
        sweeps pay neither the bank lock nor the handle lookup per
        column.  The caller owns the finite check for the whole sweep
        (one reduction over the result block instead of one per
        column); the closure keeps the handle alive even if the LRU
        evicts it mid-sweep, and a concurrent restamp cannot swap the
        pencil under a sweep that already bound its solver.
        """
        with self._lock:
            key = (self._stamp, sigma)
            handle = self._cache.get(key)
            if handle is None:
                self._misses += 1
                handle = self.backend.factorize(sigma)
                self._factorisations += 1
                self._cache[key] = handle
                self._handle_bytes[key] = handle_nbytes(handle, self.backend.n)
                self._nbytes += self._handle_bytes[key]
                self._evict(keep=key)
            else:
                self._hits += 1
                self._cache.move_to_end(key)
            return self.backend.column_solver(handle)

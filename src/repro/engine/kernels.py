"""Batched column-sweep kernels for the OPM matrix equation.

The paper's key computational observation (end of sections III-A and
IV) is that the operational matrix is upper triangular, so the matrix
equation

.. math::  E X D = A X + R    \\qquad (R = B U)

never needs the ``nm x nm`` Kronecker solve of eq. (15)/(27): column
``j`` is one shifted-pencil solve with a right-hand side assembled from
already-solved columns.  These kernels implement that sweep over a
:class:`~repro.engine.backends.PencilBank` with three accumulation
strategies (Toeplitz / alternating / general -- see
:mod:`repro.core.column_solver` for the complexity discussion), plus
the engine's extension: **batched right-hand sides**.

Every kernel accepts ``R`` of shape ``(n, m)`` (one input) or
``(n, m, k)`` (``k`` stacked inputs) and returns ``X`` of the same
shape.  In the batched form each column step performs a single
multi-RHS substitution for all ``k`` inputs -- one ``lu_solve`` per
column for the whole sweep, which is what makes
:meth:`repro.engine.session.Simulator.sweep` dramatically cheaper than
a loop of single-input runs.

The Toeplitz sweep is additionally *namespace-generic*: when the bank's
backend is an :class:`~repro.engine.backends.ArrayApiBackend`, all work
arrays live in that backend's array-API namespace (CuPy/torch on an
accelerator; numpy as the host contract), and the per-column math uses
only standard-portable operations.  The numpy code path is untouched --
host sweeps stay bit-identical to the pre-generalisation kernels.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from .backends import PencilBank

__all__ = ["sweep_toeplitz", "sweep_general", "sweep_multiterm"]


def _kernel_namespace(bank: PencilBank):
    """The bank backend's ``(namespace, is_host)`` pair."""
    backend = bank.backend
    return getattr(backend, "xp", np), getattr(backend, "is_host", True)


def _require_host(bank: PencilBank, kernel: str) -> None:
    """Refuse non-host backends for kernels that are numpy-only."""
    if not getattr(bank.backend, "is_host", True):
        raise SolverError(
            f"{kernel} supports host (numpy) backends only, got "
            f"{bank.backend.name!r}; use backend='auto'/'dense'/'sparse' "
            "for this solve route"
        )


def _as_batched(R, xp=np) -> tuple:
    """Return ``R`` as ``(n, m, k)`` plus a flag to squeeze the result.

    Host callers get the classic ``np.asarray`` coercion; device arrays
    (already staged by ``prepare_rhs``) pass through untouched.
    """
    if xp is np:
        R = np.asarray(R, dtype=float)
    if R.ndim == 2:
        return R[:, :, None], True
    if R.ndim == 3:
        return R, False
    raise SolverError(f"R must be 2-D or 3-D, got ndim={R.ndim}")


def _tail_dot(X, j: int, weights, xp=np):
    """Weighted history sum ``sum_{i<j} w_i x_i`` for all batch members.

    ``X`` is ``(n, m, k)``; ``weights`` has length ``j`` and is applied
    to the solved columns ``x_0 .. x_{j-1}`` in order (Toeplitz callers
    pass the reversed coefficient slice ``(c_j, ..., c_1)``, the general
    sweep passes ``D[:j, j]`` directly).  Returns ``(n, k)``.

    The non-numpy branch avoids ``einsum`` (not in the array API
    standard): a broadcast multiply plus an axis reduction compiles to
    the same contraction on every backend.
    """
    if xp is not np:
        return xp.sum(X[:, :j, :] * xp.reshape(weights, (1, -1, 1)), axis=1)
    if X.shape[2] == 1:
        # single-input fast path: plain GEMV on a 2-D view
        return (X[:, :j, 0] @ weights)[:, None]
    return np.einsum("njk,j->nk", X[:, :j, :], weights)


def sweep_toeplitz(
    bank: PencilBank,
    R: np.ndarray,
    coeffs: np.ndarray,
    *,
    alternating_tail: bool = False,
    history: str = "direct",
    block_size: int | None = None,
) -> np.ndarray:
    """Solve ``E X T = A X + R`` for upper-triangular Toeplitz ``T``.

    Parameters
    ----------
    bank:
        Pencil factorisation cache over the system's backend.
    R:
        Right-hand side, ``(n, m)`` or batched ``(n, m, k)``.
    coeffs:
        First-row coefficients ``(c_0, ..., c_{m-1})`` of ``T``.
    alternating_tail:
        Activate the O(n)-per-column recurrence valid when the tail
        coefficients satisfy ``c_k = -c_{k-1}`` for ``k >= 2`` (the
        first-order pattern); verified defensively.
    history:
        ``'direct'`` (paper's O(n j) dot product per column) or
        ``'fft'`` (blocked online convolution) tail accumulation when
        ``alternating_tail`` is off.
    block_size:
        Block length for ``history='fft'``.

    Returns
    -------
    numpy.ndarray
        Solution coefficients with the same shape as ``R``.
    """
    coeffs = np.asarray(coeffs, dtype=float)
    m = coeffs.size
    xp, host = _kernel_namespace(bank)
    R3, squeeze = _as_batched(R, xp)
    n, k = R3.shape[0], R3.shape[2]
    if R3.shape[1] != m:
        shape = tuple(R3.shape[:2]) if squeeze else tuple(R3.shape)
        raise SolverError(f"R must be (n, {m}), got {shape}")
    if history not in ("direct", "fft"):
        raise SolverError(f"history must be 'direct' or 'fft', got {history!r}")
    if not host and history == "fft":
        raise SolverError(
            "history='fft' is numpy-only; use history='direct' with an "
            "array-API backend"
        )
    if alternating_tail and m > 2:
        tail = coeffs[1:]
        if not np.allclose(tail[1:], -tail[:-1], rtol=1e-12, atol=0.0):
            raise SolverError(
                "alternating_tail requested but coefficients do not alternate"
            )
    sigma = float(coeffs[0])

    # one bank lookup for the whole sweep: the bound solver skips the
    # lock, the handle lookup and the per-column finite check (done
    # once over the full block below) without changing the arithmetic
    solve = bank.solver(sigma)
    apply_E = bank.backend.apply_E
    X = xp.empty((n, m, k), dtype=R3.dtype)
    if alternating_tail:
        # tail_j = sum_{i<j} c_{j-i} x_i = c_1 * t_j,
        # t_j = x_{j-1} - t_{j-1}  (paper's first-order pattern)
        c1 = coeffs[1] if m > 1 else 0.0
        t = xp.zeros((n, k), dtype=R3.dtype)
        for j in range(m):
            if j == 0:
                rhs = R3[:, 0, :]
            else:
                t = X[:, j - 1, :] - t
                rhs = R3[:, j, :] - c1 * apply_E(t)
            X[:, j, :] = solve(rhs)
    elif history == "fft" and m > 8:
        _sweep_toeplitz_fft(bank, solve, R3, coeffs, X, block_size)
    else:
        # reversed-coefficient copy so the per-column tail weights
        # (c_j, ..., c_1) are positive-step *contiguous* slices: device
        # tensors do not support negative-step slicing, and on the host
        # a negative-stride GEMV operand forces numpy off the fast BLAS
        # path (~3x slower per column)
        rev = xp.asarray(np.ascontiguousarray(coeffs[::-1]))
        for j in range(m):
            if j == 0:
                rhs = R3[:, 0, :]
            else:
                # s_j = sum_{i=1..j} c_i x_{j-i}
                s = _tail_dot(X, j, rev[m - 1 - j : m - 1], xp)
                rhs = R3[:, j, :] - apply_E(s)
            X[:, j, :] = solve(rhs)
    if not bank.backend.all_finite(X):
        raise SolverError(
            f"pencil solve at sigma={sigma:g} produced non-finite values "
            "(singular or extremely ill-conditioned pencil)"
        )
    return X[:, :, 0] if squeeze else X


def _sweep_toeplitz_fft(
    bank: PencilBank,
    solve,
    R3: np.ndarray,
    coeffs: np.ndarray,
    X: np.ndarray,
    block_size: int | None,
) -> None:
    """Blocked online-convolution column sweep (``history='fft'``).

    Columns are processed in blocks of ``B``.  Before a block starts,
    the tail contributions of every *completed* block are added with an
    FFT segment convolution (all ``n`` state rows -- and all ``k``
    batch members -- transformed at once); inside the block only the
    short within-block history remains, paid directly.  Each column's
    tail therefore equals ``sum_i c_i x_{j-i}`` exactly (up to FFT
    round-off), and the asymptotic history cost drops from ``O(n m^2)``
    to ``O(n (m/B) m log B + n m B)``, minimised near
    ``B ~ sqrt(m log m)``.
    """
    n, m, k = R3.shape
    if block_size is None:
        block_size = max(8, int(np.sqrt(m * max(np.log2(m), 1.0))))
    B = int(block_size)

    rev = np.ascontiguousarray(coeffs[::-1])  # contiguous (c_j..c_1) slices
    tail = np.zeros((n, m, k))  # accumulated cross-block contributions
    for start in range(0, m, B):
        end = min(start + B, m)
        # cross contributions of this block to ALL later columns are
        # added as soon as the block completes (see end of loop body);
        # here we only sweep within the block.
        for j in range(start, end):
            s = tail[:, j, :].copy()
            if j > start:
                d = j - start
                s += _tail_dot(X[:, start:, :], d, rev[m - 1 - d : m - 1])
            rhs = R3[:, j, :] - bank.apply_E(s) if j > 0 else R3[:, 0, :]
            X[:, j, :] = solve(rhs)
        if end >= m:
            break
        # FFT segment convolution: contribution of x_i (i in [start,end))
        # to s_j (j in [end, m)) is sum_i c_{j-i} x_i with lags
        # j - i in [1, m - 1 - start].
        length = end - start
        lags = coeffs[1 : m - start]  # c_1 ... c_{m-1-start}
        n_fft = int(2 ** np.ceil(np.log2(length + lags.size - 1)))
        fx = np.fft.rfft(X[:, start:end, :], n=n_fft, axis=1)
        fc = np.fft.rfft(lags, n=n_fft)
        conv = np.fft.irfft(fx * fc[None, :, None], n=n_fft, axis=1)
        # conv[:, t] = sum_i x_{start+i} c_{1+t-i} -> lands on column
        # j = start + 1 + t.  Columns inside this block (j < end) were
        # already served by the direct within-block sweep, so only
        # j >= end receives the convolution (t >= length - 1).
        n_cols = min(m - (start + 1), length + lags.size - 1)
        first_t = length - 1  # first t with start + 1 + t >= end
        tail[:, end : start + 1 + n_cols, :] += conv[:, first_t:n_cols, :]


def sweep_general(bank: PencilBank, R: np.ndarray, D: np.ndarray) -> np.ndarray:
    """Solve ``E X D = A X + R`` for a general upper-triangular ``D``.

    Used for adaptive grids where ``D`` is triangular but not Toeplitz
    (paper eqs. (18), (25)-(27)).  Factorisations are cached per
    distinct diagonal entry in the bank.

    Raises
    ------
    SolverError
        If ``D`` has nonzero entries below the diagonal (the column
        sweep would be invalid) or the shapes disagree.
    """
    _require_host(bank, "sweep_general")
    D = np.asarray(D, dtype=float)
    m = D.shape[0]
    if D.shape != (m, m):
        raise SolverError(f"D must be square, got {D.shape}")
    R3, squeeze = _as_batched(R)
    n = R3.shape[0]
    if R3.shape[1] != m:
        raise SolverError(f"R must be (n, {m}), got {np.asarray(R).shape}")
    lower = D[np.tril_indices(m, -1)]
    if lower.size and np.max(np.abs(lower)) > 1e-10 * max(np.max(np.abs(D)), 1.0):
        raise SolverError("D must be upper triangular for the column sweep")

    X = np.empty((n, m, R3.shape[2]))
    for j in range(m):
        if j == 0:
            rhs = R3[:, 0, :]
        else:
            # D's column j weights the solved columns 0..j-1 directly
            # (by index, not by lag), so no coefficient reversal here
            s = _tail_dot(X, j, D[:j, j])
            rhs = R3[:, j, :] - bank.apply_E(s)
        X[:, j, :] = bank.solve(float(D[j, j]), rhs)
    return X[:, :, 0] if squeeze else X


def sweep_multiterm(
    bank: PencilBank,
    R: np.ndarray,
    first_terms: list,
    second_terms: list,
    slow_terms: list,
    h: float,
) -> np.ndarray:
    """Column sweep for multi-term systems ``sum_k M_k X D^{alpha_k} = R``.

    ``bank`` must be built over the pencil sum ``P = sum_k c^(k)_0 M_k``
    (with ``A = 0``), so ``bank.solve(1.0, rhs)`` applies ``P^{-1}``.
    Integer orders 1 and 2 use O(n)-per-column alternating recurrences
    (``first_terms`` / ``second_terms`` are their matrices); every other
    positive order pays the paper's O(n j) dot product per column
    (``slow_terms`` is a list of ``(matrix, coeffs)`` pairs).

    With the alternating history sums (over the solved columns
    ``x_0 .. x_{j-1}``)

    .. math::

        A_{j-1} = \\sum_{i>=1} (-1)^{i-1} x_{j-i}, \\qquad
        B_j = \\sum_{i>=1} (-1)^i i\\, x_{j-i}

    the order-1 tail is ``-(4/h) A_{j-1}`` and the order-2 tail is
    ``4 (2/h)^2 B_j`` (see :mod:`repro.core.highorder`).

    Accepts batched ``R`` like the other kernels.
    """
    _require_host(bank, "sweep_multiterm")
    R3, squeeze = _as_batched(R)
    n, m, k = R3.shape
    uses_alt = bool(first_terms or second_terms)
    scale1 = 4.0 / h
    scale2 = 4.0 * (2.0 / h) ** 2

    X = np.empty((n, m, k))
    solve = bank.solver(1.0)
    alt_a = np.zeros((n, k))  # A_{j-1}
    alt_b = np.zeros((n, k))  # B_{j-1}
    for j in range(m):
        rhs = R3[:, j, :].copy()
        if uses_alt:
            b_j = -(alt_b + alt_a)  # B_j, from history only
        if j > 0:
            for matrix in first_terms:
                # rhs -= M s^(1) with s^(1) = -(4/h) A_{j-1}
                rhs += scale1 * (matrix @ alt_a)
            for matrix in second_terms:
                rhs -= scale2 * (matrix @ b_j)
            for matrix, coeffs in slow_terms:
                # negative-step slice kept on purpose: integer orders
                # >= 3 have huge alternating weights whose history sum
                # lives on cancellation -- preserve the summation order
                s = _tail_dot(X, j, coeffs[j:0:-1])
                rhs -= matrix @ s
        X[:, j, :] = solve(rhs)
        if uses_alt:
            alt_b = b_j
            alt_a = X[:, j, :] - alt_a
    if not bank.backend.all_finite(X):
        raise SolverError(
            "pencil solve at sigma=1 produced non-finite values "
            "(singular or extremely ill-conditioned pencil)"
        )
    return X[:, :, 0] if squeeze else X

"""Certified reduced-order engine plans (MOR in the solve loop).

The paper's headline workload is a 75 K-node power grid; for repeated
transient analysis such models are routinely *reduced* first (PRIMA-style
Krylov moment matching, :mod:`repro.core.mor`) and only the small
congruence projection is simulated.  This module puts that reduction
inside the engine: a :class:`ReductionPlan` attached to a
:class:`~repro.engine.session.Simulator` (``reduce="auto"`` or an
explicit plan) reduces the bound system **once at session bind**, runs
every ``run``/``sweep``/``march`` on the reduced pencil, and lifts the
coefficients back through the orthonormal basis ``V``.

Because a Krylov projection is an approximation, the plan is
*certified* rather than trusted:

* **bind-time bound** -- at session bind the relative transfer residual

  .. math::  \\eta(s) = \\frac{\\|(s E - A) V \\tilde{x}_r(s) -
             \\tilde{B}\\|_F}{\\|\\tilde{B}\\|_F},
             \\qquad \\tilde{x}_r(s) = (s E_r - A_r)^{-1} \\tilde{B}_r,

  is evaluated at a handful of probe frequencies spanning the band the
  session grid can resolve (``[1/t_end, m / (2 t_end)]``).  Only
  matrix-vector products with the *full* ``E``/``A`` are needed -- the
  full pencil is never factorised.  If the worst probe residual exceeds
  the plan's ``rtol`` the session silently falls back to the full
  model (the decision is recorded in the result ``info``).
* **per-run residual (drift guard)** -- after each reduced solve the
  lifted coefficients are substituted back into the *full-order*
  operational matrix equation on a few sampled columns
  (:func:`equation_residual`).  The raw equation residual is not an
  output-error bound -- on stiff MNA grids the solution terms
  ``||A x_j||`` dwarf the right-hand side, so even an accurate reduced
  solution leaves a residual orders of magnitude above its true output
  error.  The session therefore *calibrates* the guard at bind: it
  runs the reduced model once on a unit-step reference input and
  records that run's residual as the certified scale.  A later run
  falls back to the (lazily built) full plan only when its residual
  exceeds ``max(rtol, MOR_RESIDUAL_MARGIN * scale)`` -- i.e. when the
  input has drifted outside the subspace the bind certificate
  vouched for, not merely because the workload is stiff.

Nonzero initial states are handled in shifted coordinates: the Krylov
basis is grown from the augmented input matrix ``[B, A x0]`` so the
subspace captures the offset response, and the reduced solve system is
an :class:`OffsetDescriptorSystem` carrying the projected constant
forcing ``V^T A x0`` with ``x0 = None`` -- every engine plan already
injects ``shifted_input_offset()`` into its right-hand sides, so the
reduced model flows through session, sweep, marching, and executor
untouched.  Lifting is ``x = V z + x0``.

Reduced models are cached process-wide keyed by the *content* of
``(E, A, B, x0)`` plus the plan fingerprint, so a parent executor, its
sharded sweeps, and a user session binding the same grid all share one
Arnoldi factorisation.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import Any

import numpy as np
import scipy.linalg

from ..core.lti import DescriptorSystem, MultiTermSystem
from ..core.mor import krylov_reduce_with_basis
from ..errors import SolverError
from .backends import pencil_fingerprint

__all__ = [
    "ReductionPlan",
    "ReducedModel",
    "OffsetDescriptorSystem",
    "resolve_reduce",
    "combine_reduce_options",
    "bind_reduction",
    "reduced_model_for",
    "equation_residual",
    "clear_model_cache",
    "AUTO_MIN_STATES",
    "MOR_RESIDUAL_MARGIN",
]

#: ``reduce="auto"`` only engages for systems with at least this many
#: states: below it the full factorisation is already cheap and the
#: Arnoldi build would dominate.
AUTO_MIN_STATES = 512

#: Default certified relative tolerance.
DEFAULT_RTOL = 1e-6

#: Default number of block moments matched at the expansion point.
DEFAULT_MOMENTS = 12

#: Per-run drift-guard margin: a run falls back to the full model when
#: its equation residual exceeds ``max(rtol, margin * scale)``, where
#: ``scale`` is the residual of the bind-time unit-step reference run
#: (see the module docstring -- the raw equation residual is workload-
#: conditioned, so it is judged against the certified reference, not
#: against ``rtol`` alone).
MOR_RESIDUAL_MARGIN = 16.0

#: Process-wide reduced-model cache (content-keyed); small because each
#: entry holds an ``n x r`` basis.
_CACHE_SIZE = 8
_MODEL_CACHE: "OrderedDict[tuple, ReducedModel]" = OrderedDict()


def clear_model_cache() -> None:
    """Drop every cached reduced model (benchmarks/tests that need to
    time or observe a cold Arnoldi build call this between repeats)."""
    _MODEL_CACHE.clear()


@dataclass(frozen=True)
class ReductionPlan:
    """Specification of a session-bind Krylov reduction.

    Parameters
    ----------
    n_moments:
        Block moments matched at the expansion point (reduced order is
        at most ``n_moments * n_inputs``, less under deflation).
    expansion_point:
        Laplace expansion point ``s_0``; ``None`` (default) centres it
        in the band the session grid resolves,
        ``sqrt(m / 2) / t_end``.
    target_order:
        Optional hard cap on the reduced order (the orthonormal basis
        is truncated to its leading columns).
    rtol:
        Certified relative tolerance: the bind-time probe bound must
        stay below this, otherwise the engine falls back to the full
        model.  Per-run residuals are judged against the calibrated
        drift guard ``max(rtol, MOR_RESIDUAL_MARGIN * scale)`` (see
        the module docstring).
    """

    n_moments: int = DEFAULT_MOMENTS
    expansion_point: float | None = None
    target_order: int | None = None
    rtol: float = DEFAULT_RTOL

    def __post_init__(self) -> None:
        if int(self.n_moments) < 1:
            raise SolverError(f"n_moments must be >= 1, got {self.n_moments}")
        if self.target_order is not None and int(self.target_order) < 1:
            raise SolverError(
                f"target_order must be >= 1, got {self.target_order}"
            )
        if not float(self.rtol) > 0.0:
            raise SolverError(f"rtol must be positive, got {self.rtol}")

    def fingerprint(self) -> tuple:
        """Content key of the reduction specification (cache component)."""
        return (
            int(self.n_moments),
            None if self.expansion_point is None else float(self.expansion_point),
            None if self.target_order is None else int(self.target_order),
        )


class OffsetDescriptorSystem(DescriptorSystem):
    """Descriptor system with an explicit constant forcing offset.

    The reduced solve system lives in shifted coordinates
    ``z = V^T (x - x0)`` whose dynamics are
    ``E_r z' = A_r z + B_r u + g`` with ``g = V^T A x0``.  The base
    class derives its zero-IC shift from ``x0``; here the offset is a
    first-class vector (``x0`` stays ``None``), so every engine plan
    picks it up through the same :meth:`shifted_input_offset` hook.
    """

    def __init__(self, E, A, B, *, offset=None, C=None, D=None) -> None:
        super().__init__(E, A, B, C=C, D=D)
        if offset is None:
            self.offset = None
        else:
            offset = np.asarray(offset, dtype=float).reshape(-1)
            if offset.size != self.n_states:
                raise SolverError(
                    f"offset must have length {self.n_states}, got {offset.size}"
                )
            self.offset = None if not np.any(offset) else offset

    def shifted_input_offset(self) -> np.ndarray | None:
        """The stored constant forcing ``g`` (``None`` when zero)."""
        return self.offset


@dataclass(frozen=True)
class ReducedModel:
    """A certified Krylov reduction of one full-order system.

    Attributes
    ----------
    full:
        The original (full-order) system; result containers keep using
        its ``C``/``D`` and dimensions.
    solve_system:
        The reduced :class:`OffsetDescriptorSystem` every plan solves.
    V:
        Orthonormal ``n x r`` lifting basis (``x = V z + x0``).
    s0:
        Resolved expansion point.
    bound:
        Worst bind-time probe residual (the certified bound).
    probes:
        Probe frequencies the bound was evaluated at.
    reduce_seconds:
        Wall time of the Arnoldi build + certification.
    """

    full: DescriptorSystem
    solve_system: OffsetDescriptorSystem
    V: np.ndarray
    s0: float
    bound: float
    probes: tuple[float, ...]
    reduce_seconds: float

    @property
    def order(self) -> int:
        """Reduced state dimension ``r``."""
        return self.V.shape[1]

    def lift(self, Z: np.ndarray) -> np.ndarray:
        """Lift reduced shifted coefficients ``(r, m)`` / ``(r, m, k)``
        to full-order shifted coefficients (``x0`` columns are added by
        the caller, which knows the basis)."""
        if Z.ndim == 2:
            return self.V @ Z
        r, m, k = Z.shape
        # one BLAS GEMM on the flattened batch, not an einsum loop
        return (self.V @ Z.reshape(r, m * k)).reshape(-1, m, k)

    @cached_property
    def projected_pencil(self) -> tuple[np.ndarray, np.ndarray]:
        """``(E V, A V)``: the full pencil applied to the lifting basis.

        Lets :func:`equation_residual` evaluate the *full-order*
        residual of a lifted solution directly from the reduced
        coefficients -- ``E (V (Z w)_j) = (E V) (Z w)_j`` -- so the
        per-run drift guard costs ``O(n r k)`` GEMMs instead of
        materialising and recombining ``n x m x k`` lifted columns.
        """
        EV = np.asarray(self.full.E @ self.V)
        AV = np.asarray(self.full.A @ self.V)
        return EV, AV

    def info(self, rtol: float) -> dict:
        """Metadata recorded in result ``info['mor']``."""
        return {
            "reduced": True,
            "order": self.order,
            "full_order": self.full.n_states,
            "s0": self.s0,
            "bound": self.bound,
            "rtol": rtol,
            "certified": bool(self.bound <= rtol),
            "reduce_seconds": self.reduce_seconds,
        }


def resolve_reduce(reduce: Any) -> tuple[ReductionPlan | None, bool]:
    """Normalise a ``reduce=`` argument to ``(plan, is_auto)``.

    Accepts ``None``/``False``/``"off"`` (no reduction), ``"auto"``
    (default plan, eligibility-gated), an integer (``n_moments`` of an
    explicit plan), or a ready :class:`ReductionPlan`.
    """
    if reduce is None or reduce is False:
        return None, False
    if isinstance(reduce, ReductionPlan):
        return reduce, False
    if isinstance(reduce, (int, np.integer)) and not isinstance(reduce, bool):
        return ReductionPlan(n_moments=int(reduce)), False
    if isinstance(reduce, str):
        name = reduce.strip().lower()
        if name in ("", "off", "none", "false"):
            return None, False
        if name == "auto":
            return ReductionPlan(), True
        if name.isdigit():
            # string spelling of a moment count (CLI flags and netlist
            # .options cards arrive as text)
            return ReductionPlan(n_moments=int(name)), False
        raise SolverError(
            f"reduce must be 'auto', 'off', an integer moment count, or a "
            f"ReductionPlan, got {reduce!r}"
        )
    raise SolverError(
        f"reduce must be 'auto', 'off', an integer moment count, or a "
        f"ReductionPlan, got {type(reduce).__name__}"
    )


def combine_reduce_options(reduce=None, mor_order=None):
    """Combine the two user-facing reduction knobs (netlist ``.options
    reduce= mor_order=``, CLI ``--reduce`` / ``--mor-order``) into one
    session ``reduce=`` argument.

    An explicit ``mor_order`` implies reduction with that moment count
    (unless ``reduce`` disables it); a bare ``reduce`` flag passes
    through for :func:`resolve_reduce`.
    """
    if mor_order is not None:
        if isinstance(reduce, str) and reduce.strip().lower() in (
            "off",
            "none",
            "false",
        ):
            return None
        return ReductionPlan(n_moments=int(mor_order))
    return reduce


def _resolve_probes(
    plan: ReductionPlan, t_end: float | None, m: int
) -> tuple[float, tuple[float, ...]]:
    """Expansion point and certification probes for a session band.

    Finite-horizon sessions certify over ``[1/t_end, m/(2 t_end)]`` --
    the frequency band an ``m``-term expansion on ``[0, t_end]`` can
    represent; certifying far beyond it would reject reductions for
    behaviour the *basis itself* cannot express.  Grid-free bases
    (Laguerre) certify around the expansion point instead.
    """
    if t_end is not None and np.isfinite(t_end) and t_end > 0.0:
        s_lo = 1.0 / t_end
        s_hi = max(m, 2) / (2.0 * t_end)
        s0 = (
            float(plan.expansion_point)
            if plan.expansion_point is not None
            else float(np.sqrt(s_lo * s_hi))
        )
        probes = np.geomspace(s_lo, s_hi, num=5)
    else:
        s0 = (
            float(plan.expansion_point)
            if plan.expansion_point is not None
            else 1.0
        )
        probes = s0 * np.array([0.25, 0.5, 1.0, 2.0, 4.0])
    all_probes = tuple(sorted(set(float(s) for s in probes) | {s0}))
    return s0, all_probes


def _transfer_bound(
    full: DescriptorSystem,
    V: np.ndarray,
    B_aug: np.ndarray,
    e_red: np.ndarray,
    a_red: np.ndarray,
    b_red_aug: np.ndarray,
    probes: tuple[float, ...],
) -> float:
    """Worst relative transfer residual over the probe frequencies.

    Matrix-vector products with the full ``E``/``A`` only -- the full
    pencil is never factorised.  A singular reduced probe pencil means
    the reduction cannot even represent that frequency; it scores as an
    infinite bound (and therefore a fallback), not an exception.
    """
    b_norm = float(np.linalg.norm(B_aug))
    if b_norm == 0.0:
        return 0.0
    E, A = full.E, full.A
    worst = 0.0
    for s in probes:
        try:
            x_red = scipy.linalg.solve(s * e_red - a_red, b_red_aug)
        except (np.linalg.LinAlgError, scipy.linalg.LinAlgError, ValueError):
            return float("inf")
        if not np.all(np.isfinite(x_red)):
            return float("inf")
        lifted = V @ x_red
        resid = s * np.asarray(E @ lifted) - np.asarray(A @ lifted) - B_aug
        worst = max(worst, float(np.linalg.norm(resid)) / b_norm)
    return worst


def _cache_key(
    system: DescriptorSystem,
    plan: ReductionPlan,
    t_end: float | None,
    m: int,
) -> tuple:
    x0 = system.x0
    return (
        pencil_fingerprint(system.E, system.A),
        pencil_fingerprint(system.B),
        None if x0 is None else x0.tobytes(),
        plan.fingerprint(),
        None if t_end is None else float(t_end),
        int(m),
    )


def reduced_model_for(
    system: DescriptorSystem,
    plan: ReductionPlan,
    *,
    t_end: float | None,
    m: int,
) -> ReducedModel:
    """Build (or fetch from the process-wide cache) a certified
    :class:`ReducedModel` for ``system`` under ``plan``.

    Raises
    ------
    SolverError
        For non-first-order systems, singular expansion pencils, or a
        fully deflated Krylov space (propagated from
        :func:`~repro.core.mor.krylov_reduce_with_basis`).
    """
    key = _cache_key(system, plan, t_end, m)
    model = _MODEL_CACHE.get(key)
    if model is not None:
        _MODEL_CACHE.move_to_end(key)
        return model

    start = time.perf_counter()
    s0, probes = _resolve_probes(plan, t_end, m)
    x0 = system.x0
    B = np.asarray(system.B, dtype=float)
    if x0 is not None:
        # grow the subspace from [B, A x0] so it captures the offset
        # response of the zero-IC shift as well as the input response
        offset_full = np.asarray(system.A @ x0).reshape(-1, 1)
        B_aug = np.hstack([B, offset_full])
    else:
        offset_full = None
        B_aug = B
    seed = DescriptorSystem(system.E, system.A, B_aug)
    _, V = krylov_reduce_with_basis(seed, plan.n_moments, expansion_point=s0)
    if plan.target_order is not None and V.shape[1] > plan.target_order:
        V = np.ascontiguousarray(V[:, : plan.target_order])

    e_red = np.asarray(V.T @ (system.E @ V))
    a_red = np.asarray(V.T @ (system.A @ V))
    b_red = V.T @ B
    offset_red = None if offset_full is None else (V.T @ offset_full).reshape(-1)
    solve_system = OffsetDescriptorSystem(e_red, a_red, b_red, offset=offset_red)

    bound = _transfer_bound(system, V, B_aug, e_red, a_red, V.T @ B_aug, probes)
    model = ReducedModel(
        full=system,
        solve_system=solve_system,
        V=V,
        s0=s0,
        bound=bound,
        probes=probes,
        reduce_seconds=time.perf_counter() - start,
    )
    _MODEL_CACHE[key] = model
    while len(_MODEL_CACHE) > _CACHE_SIZE:
        _MODEL_CACHE.popitem(last=False)
    return model


def bind_reduction(
    system: Any,
    reduce: Any,
    *,
    t_end: float | None,
    m: int,
) -> tuple[ReducedModel | None, dict]:
    """Resolve and certify a reduction at session bind.

    Returns ``(model, info)``: ``model`` is ``None`` when no reduction
    applies (ineligible under ``"auto"``, no compression, or the
    certified bound exceeded ``rtol``), with ``info`` recording why.
    An *explicit* plan on a system the reducer cannot handle at all
    (fractional / multi-term) raises; ``"auto"`` skips silently.
    """
    plan, auto = resolve_reduce(reduce)
    if plan is None:
        return None, {}

    def skip(reason: str, **extra) -> tuple[None, dict]:
        info = {"reduced": False, "reason": reason}
        info.update(extra)
        return None, info

    if isinstance(system, MultiTermSystem) or not isinstance(
        system, DescriptorSystem
    ):
        if auto:
            return skip("unsupported-system")
        raise SolverError(
            "reduce= supports first-order DescriptorSystem models only; "
            f"got {type(system).__name__}"
        )
    if system.alpha != 1.0:
        if auto:
            return skip("fractional-order")
        raise SolverError(
            "reduce= requires a first-order system (alpha == 1); the "
            f"bound system has alpha={system.alpha:g}.  Reduce-then-"
            "simulate is not moment-preserving for fractional pencils."
        )
    if auto and system.n_states < AUTO_MIN_STATES:
        return skip("below-auto-threshold", threshold=AUTO_MIN_STATES)

    model = reduced_model_for(system, plan, t_end=t_end, m=m)
    if model.order >= system.n_states:
        return skip("no-compression", order=model.order)
    if model.bound > plan.rtol:
        return skip(
            "bound-exceeded",
            bound=model.bound,
            rtol=plan.rtol,
            fallback=True,
        )
    return model, model.info(plan.rtol)


def equation_residual(
    E,
    A,
    Z: np.ndarray,
    R: np.ndarray,
    *,
    coeffs: np.ndarray | None = None,
    D: np.ndarray | None = None,
    F: np.ndarray | None = None,
    samples: int = 8,
) -> float:
    """Relative full-order residual of lifted coefficients on sampled columns.

    Substitutes the lifted (shifted-coordinate) solution ``Z`` back
    into the full operational-matrix equation and returns the worst
    sampled relative column residual:

    * Toeplitz / triangular plans (``coeffs`` / ``D``):
      ``rho_j = E (Z D)_j - A z_j - r_j``;
    * spectral integral-form plans (``F``):
      ``rho_j = E z_j - A (Z F)_j - (R F)_j``.

    ``Z`` and ``R`` are ``(n, m)`` or batched ``(n, m, k)``.  For a
    reduced solve, pass the *projected* pencil
    (:attr:`ReducedModel.projected_pencil`, shapes ``(n, r)``) with the
    reduced coefficients ``(r, m[, k])`` -- linearity of the lift makes
    that the same full-order residual at ``O(n r)`` per column.  The
    residual measures pure reduction error -- the reduced solve
    satisfies the projected equation exactly, so any leftover is what
    the Krylov subspace could not represent.  It is an estimate of the
    relative output error (exact up to the conditioning of the full
    operator), reported against the plan ``rtol``.
    """
    squeeze = Z.ndim == 2
    Z3 = Z[:, :, None] if squeeze else Z
    R3 = R[:, :, None] if R.ndim == 2 else R
    n, m, k = Z3.shape
    denom = float(np.linalg.norm(R3)) / np.sqrt(max(m, 1))
    if denom == 0.0:
        denom = 1.0
    count = min(int(samples), m)
    cols = sorted(set(np.linspace(0, m - 1, num=max(count, 1), dtype=int)))
    ZF = None
    if F is not None:
        ZF = np.einsum("nmk,mj->njk", Z3, F)
        RF = np.einsum("nmk,mj->njk", R3, F)
    worst = 0.0
    for j in cols:
        if F is not None:
            rho = (
                np.asarray(E @ Z3[:, j, :])
                - np.asarray(A @ ZF[:, j, :])
                - RF[:, j, :]
            )
        else:
            if D is not None:
                weights = D[: j + 1, j]
            else:
                weights = coeffs[j::-1]
            combo = np.tensordot(Z3[:, : j + 1, :], weights, axes=([1], [0]))
            rho = np.asarray(E @ combo) - np.asarray(A @ Z3[:, j, :]) - R3[:, j, :]
        worst = max(worst, float(np.linalg.norm(rho)) / denom)
    return worst

"""Batched simulation results (multi-input sweeps).

:meth:`repro.engine.session.Simulator.sweep` solves many inputs in one
multi-RHS column sweep; :class:`SweepResult` holds the stacked
coefficient tensors and feeds both the vectorised accessors
(:meth:`SweepResult.states` / :meth:`SweepResult.outputs`) and the
existing per-run machinery -- indexing a sweep yields an ordinary
:class:`~repro.core.result.SimulationResult`, so everything in
:mod:`repro.analysis` and :mod:`repro.io` consumes sweep members
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..basis.base import BasisSet
from ..basis.block_pulse import BlockPulseBasis
from ..basis.pwconst import PiecewiseConstantBasis
from ..core.result import SimulationResult, _natural_sample_times

__all__ = ["SweepResult"]


class SweepResult:
    """Stacked results of a batched multi-input simulation.

    Attributes
    ----------
    basis:
        The shared basis of every run in the sweep.
    coefficients:
        State coefficient tensor of shape ``(k, n_states, m)`` -- entry
        ``[i]`` is the coefficient matrix of input ``i``.
    input_coefficients:
        Input coefficient tensor of shape ``(k, n_inputs, m)``.
    system:
        The simulated system (shared by all runs).
    wall_time:
        Wall-clock seconds of the whole batched sweep.
    info:
        Solver metadata (method, factorisations, batch size, ...).
    """

    def __init__(
        self,
        basis: BasisSet,
        coefficients: np.ndarray,
        system,
        input_coefficients: np.ndarray,
        *,
        wall_time: float | None = None,
        info: dict | None = None,
    ) -> None:
        coefficients = np.asarray(coefficients, dtype=float)
        input_coefficients = np.asarray(input_coefficients, dtype=float)
        if coefficients.ndim != 3 or coefficients.shape[2] != basis.size:
            raise ValueError(
                f"coefficients must be (k, n, {basis.size}), got {coefficients.shape}"
            )
        if (
            input_coefficients.ndim != 3
            or input_coefficients.shape[2] != basis.size
            or input_coefficients.shape[0] != coefficients.shape[0]
        ):
            raise ValueError(
                f"input_coefficients must be ({coefficients.shape[0]}, p, "
                f"{basis.size}), got {input_coefficients.shape}"
            )
        self.basis = basis
        self.coefficients = coefficients
        self.input_coefficients = input_coefficients
        self.system = system
        self.wall_time = wall_time
        self.info = dict(info or {})
        self._output_coefficients: np.ndarray | None = None

    # ------------------------------------------------------------------
    # shape properties
    # ------------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        """Number of inputs in the sweep (``k``)."""
        return self.coefficients.shape[0]

    @property
    def n_states(self) -> int:
        """State dimension shared by every run."""
        return self.coefficients.shape[1]

    @property
    def m(self) -> int:
        """Number of basis terms (time intervals for block pulses)."""
        return self.basis.size

    @property
    def grid(self):
        """The time grid when the basis is block-pulse, else ``None``."""
        if isinstance(self.basis, BlockPulseBasis):
            return self.basis.grid
        return None

    # ------------------------------------------------------------------
    # sequence protocol: a sweep is a list of SimulationResults
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_runs

    def __getitem__(self, index):
        """One run as a :class:`SimulationResult`, or a sub-sweep for slices.

        Extracted results carry ``wall_time=None``: the batch's wall
        time (on this container) is not attributable to any single run.
        """
        if isinstance(index, slice):
            return SweepResult(
                self.basis,
                self.coefficients[index],
                self.system,
                self.input_coefficients[index],
                wall_time=None,
                info=dict(self.info),
            )
        idx = range(self.n_runs)[index]  # normalises negatives, raises IndexError
        info = dict(self.info)
        info["sweep_index"] = idx
        return SimulationResult(
            self.basis,
            self.coefficients[idx],
            self.system,
            self.input_coefficients[idx],
            wall_time=None,
            info=info,
        )

    def __iter__(self):
        for idx in range(self.n_runs):
            yield self[idx]

    @property
    def results(self) -> list[SimulationResult]:
        """All runs as a list of :class:`SimulationResult` objects."""
        return list(self)

    # ------------------------------------------------------------------
    # vectorised sampling
    # ------------------------------------------------------------------
    @property
    def output_coefficients(self) -> np.ndarray:
        """Output coefficient tensor ``(k, n_outputs, m)`` (``Y = C X + D U``).

        Computed once and cached (the stacked coefficients are
        immutable by convention).
        """
        if self._output_coefficients is None:
            self._output_coefficients = np.stack(
                [
                    self.system.output_coefficients(
                        self.coefficients[i], self.input_coefficients[i]
                    )
                    for i in range(self.n_runs)
                ]
            )
        return self._output_coefficients

    def states(self, times) -> np.ndarray:
        """Sample every run's state trajectory: ``(k, n_states, len(times))``."""
        values = self.basis.evaluate(np.atleast_1d(times))
        return self.coefficients @ values

    def outputs(self, times) -> np.ndarray:
        """Sample every run's output trajectory: ``(k, n_outputs, len(times))``."""
        values = self.basis.evaluate(np.atleast_1d(times))
        return self.output_coefficients @ values

    def _interpolate(self, coeffs: np.ndarray, times) -> np.ndarray:
        """Midpoint-linear (second-order) reconstruction of a ``(k, q, m)`` stack.

        Mirrors :meth:`SimulationResult.states_smooth` so sweep members
        and vectorised sampling agree; Walsh/Haar stacks convert to
        block-pulse coordinates first, other non-grid bases fall back
        to basis synthesis.
        """
        grid = self.grid
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if grid is None and isinstance(self.basis, PiecewiseConstantBasis):
            grid = self.basis.block_pulse.grid
            coeffs = self.basis.to_block_pulse_coefficients(coeffs)
        if grid is None:
            return coeffs @ self.basis.evaluate(times)
        mids = grid.midpoints
        out = np.empty(coeffs.shape[:2] + (times.size,))
        for i in range(coeffs.shape[0]):
            for j in range(coeffs.shape[1]):
                out[i, j] = np.interp(times, mids, coeffs[i, j])
        return out

    def sample_times(self, n_points: int | None = None) -> np.ndarray:
        """Natural sampling times shared by every run in the sweep.

        Grid midpoints for block-pulse sweeps (``n_points is None``),
        otherwise ``n_points`` (default 256) equally spaced midpoints on
        ``[0, t_end)`` -- the same rule as
        :meth:`repro.core.result.SimulationResult.sample_times`.
        """
        return _natural_sample_times(self.basis, self.grid, n_points)

    def states_smooth(self, times) -> np.ndarray:
        """Second-order (midpoint-linear) state reconstruction, ``(k, n, nt)``."""
        return self._interpolate(self.coefficients, times)

    def outputs_smooth(self, times) -> np.ndarray:
        """Second-order (midpoint-linear) output reconstruction, ``(k, q, nt)``."""
        return self._interpolate(self.output_coefficients, times)

    def __repr__(self) -> str:
        return (
            f"SweepResult(k={self.n_runs}, n={self.n_states}, m={self.m}, "
            f"basis={self.basis.name}, wall_time={self.wall_time})"
        )

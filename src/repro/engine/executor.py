"""Parallel ensemble execution: sharded multi-core sweeps.

The paper's cost model makes one fact central: the expensive,
input-independent work is *per circuit configuration* (one pencil
factorisation, amortised over every column and call).  Monte-Carlo
tolerance analysis and corner sweeps invert the workload shape the rest
of the engine optimises for -- instead of one pencil and many
right-hand sides, they present *many pencils*, each with a handful of
inputs.  That unit (factorise one configuration, sweep its inputs) is
embarrassingly parallel, and this module shards it across cores:

* :class:`Ensemble` -- an ordered list of :class:`EnsembleMember`
  ``(system, u)`` work items, with a :meth:`Ensemble.variations`
  constructor that builds cartesian / Monte-Carlo parameter variations
  of a netlist through
  :meth:`~repro.circuits.netlist.Netlist.with_values` and
  :func:`~repro.circuits.mna.assemble_mna_restamp` (so every member is
  state-layout-checked against the base circuit).  Monte-Carlo draws
  are made eagerly in the parent from ``numpy.random.default_rng(seed)``
  -- the member list is therefore bit-identical regardless of ``jobs``
  or executor backend.
* :class:`ParallelExecutor` -- ``backend='process' | 'thread' |
  'serial'`` with ``jobs=N`` workers.  Members are grouped by pencil
  fingerprint (:func:`~repro.engine.backends.pencil_fingerprint`), so
  each worker factorises every distinct pencil exactly once and sweeps
  all of that pencil's inputs in one batched multi-RHS call through its
  local :class:`~repro.engine.backends.PencilBank`.  Oversized groups
  (one pencil, hundreds of inputs -- the ``sweep(jobs=)`` case) are
  split into column shards.
* zero-copy shipping -- for the process backend, dense pencils and the
  pre-projected input coefficients travel to workers through
  ``multiprocessing.shared_memory`` (one segment per task, reconstructed
  as ndarray views on the worker side, so the large Kronecker/spectral
  blocks are never pickled), with a transparent pickle fallback for
  sparse / multi-term systems and sub-threshold payloads.  Segments are
  unlinked by the parent as each task completes, on success and on
  failure alike.
* streaming -- :meth:`ParallelExecutor.iter_chunks` yields
  :class:`EnsembleChunk` objects in *completion* order; a failing
  member does not stop the remaining chunks, it is re-raised as
  :class:`~repro.errors.EnsembleError` (member index + original
  exception) once every other chunk has streamed.
  :meth:`ParallelExecutor.run` gathers the chunks into an
  :class:`EnsembleResult` in member order.

Inputs are projected onto the session basis *in the parent*, so worker
tasks never pickle user callables, and serial/thread/process backends
consume byte-identical coefficient arrays -- the foundation of the
bit-identical-across-backends guarantee asserted by the benchmark
suite.

Guidance: prefer ``backend='process'`` for ensembles (the column sweep
is Python-loop-heavy, so threads serialise on the GIL); set
``OMP_NUM_THREADS=1`` when launching many workers, as oversubscribed
BLAS thread pools otherwise thrash the cores the workers need.
"""

from __future__ import annotations

import itertools
import math
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..basis.base import BasisSet
from ..core.lti import DescriptorSystem, FractionalDescriptorSystem
from ..core.result import SimulationResult
from ..errors import EnsembleError
from .backends import pencil_fingerprint
from .reduction import OffsetDescriptorSystem, bind_reduction

__all__ = [
    "Ensemble",
    "EnsembleMember",
    "EnsembleChunk",
    "EnsembleResult",
    "ParallelExecutor",
    "EXECUTOR_BACKENDS",
    "default_jobs",
]

#: Executor backends accepted by :class:`ParallelExecutor`.
EXECUTOR_BACKENDS = ("process", "thread", "serial")

#: Below this many bytes of dense payload a process task is pickled
#: rather than shipped through shared memory (segment setup costs more
#: than copying a few kilobytes).
SHM_MIN_BYTES = 1 << 15


def default_jobs() -> int:
    """Default worker count: the machine's usable CPU count."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _limit_worker_blas() -> None:
    """Best-effort single-threaded BLAS inside a worker process.

    Environment variables only help libraries loaded after the fork;
    ``threadpoolctl`` (when installed) also caps pools that are already
    live.  Either way this is advisory -- the README documents setting
    ``OMP_NUM_THREADS=1`` before launching many-worker runs.
    """
    for var in (
        "OMP_NUM_THREADS",
        "OPENBLAS_NUM_THREADS",
        "MKL_NUM_THREADS",
        "NUMEXPR_NUM_THREADS",
    ):
        os.environ.setdefault(var, "1")
    try:  # pragma: no cover - optional dependency
        import threadpoolctl

        threadpoolctl.threadpool_limits(1)
    except Exception:
        pass


# ----------------------------------------------------------------------
# ensemble specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EnsembleMember:
    """One unit of ensemble work: a system plus the input driving it.

    Attributes
    ----------
    system:
        A :class:`~repro.core.lti.DescriptorSystem` /
        :class:`~repro.core.lti.FractionalDescriptorSystem` /
        :class:`~repro.core.lti.MultiTermSystem` model.
    u:
        Input specification (anything :meth:`repro.Simulator.run`
        accepts), or ``None`` to use the executor-level default input.
    label:
        Human-readable member name (``"R1=952.3,C2=1.04e-06"`` for
        netlist variations).
    params:
        The parameter overrides that produced this member (empty for
        explicit ``(system, u)`` members).
    """

    system: Any
    u: Any = None
    label: str | None = None
    params: Mapping[str, float] = field(default_factory=dict)


def _draw_value(rng: np.random.Generator, nominal: float, spec) -> float:
    """One Monte-Carlo draw: relative half-width or absolute range.

    ``spec`` is either a relative half-width ``s`` in ``(0, 1)``
    (uniform in ``[nominal (1 - s), nominal (1 + s)]``) or an absolute
    ``(low, high)`` pair.
    """
    if np.isscalar(spec):
        s = float(spec)
        if not 0.0 < s < 1.0:
            raise EnsembleError(
                f"relative Monte-Carlo spread must lie in (0, 1), got {s!r}"
            )
        return float(rng.uniform(nominal * (1.0 - s), nominal * (1.0 + s)))
    low, high = (float(spec[0]), float(spec[1]))
    if not low < high:
        raise EnsembleError(f"Monte-Carlo range must satisfy low < high, got {spec!r}")
    return float(rng.uniform(low, high))


def _member_label(params: Mapping[str, float]) -> str:
    return ",".join(f"{name}={value:.6g}" for name, value in params.items())


class Ensemble:
    """Ordered collection of :class:`EnsembleMember` work items.

    Build one explicitly from ``(system, u)`` pairs /
    :class:`EnsembleMember` objects, or from a base netlist with
    :meth:`variations` (cartesian corner sweeps and seeded Monte-Carlo
    tolerance analysis over MNA element values).

    Examples
    --------
    >>> from repro.circuits import Netlist
    >>> base = Netlist.from_spice('''
    ... I1 0 n1 1m
    ... R1 n1 0 1k
    ... C1 n1 0 1u
    ... ''')
    >>> corners = Ensemble.variations(base, {"R1": [900.0, 1100.0],
    ...                                      "C1": [0.9e-6, 1.1e-6]})
    >>> len(corners), corners[0].label
    (4, 'R1=900,C1=9e-07')
    >>> mc = Ensemble.variations(base, {"R1": 0.1}, mode="monte-carlo",
    ...                          n=8, seed=42)
    >>> len(mc), len(set(m.params["R1"] for m in mc))
    (8, 8)
    """

    def __init__(self, members: Iterable) -> None:
        resolved: list[EnsembleMember] = []
        for item in members:
            if isinstance(item, EnsembleMember):
                resolved.append(item)
            elif isinstance(item, tuple) and len(item) == 2:
                resolved.append(EnsembleMember(system=item[0], u=item[1]))
            else:
                raise EnsembleError(
                    "ensemble members must be EnsembleMember objects or "
                    f"(system, u) pairs, got {type(item).__name__}"
                )
        if not resolved:
            raise EnsembleError("an ensemble requires at least one member")
        self.members = resolved

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[EnsembleMember]:
        return iter(self.members)

    def __getitem__(self, index: int) -> EnsembleMember:
        return self.members[index]

    def __repr__(self) -> str:
        return f"Ensemble(k={len(self.members)})"

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def variations(
        cls,
        base,
        params: Mapping[str, Any],
        *,
        mode: str = "cartesian",
        n: int | None = None,
        seed: int | None = None,
        u=None,
        outputs=None,
        sparse: str = "auto",
    ) -> "Ensemble":
        """Parameter variations of a base netlist.

        Every member re-stamps the MNA model through
        :func:`~repro.circuits.mna.assemble_mna_restamp`, so element
        changes that would silently permute the state vector raise
        instead.

        Parameters
        ----------
        base:
            The nominal :class:`~repro.circuits.netlist.Netlist`.
        params:
            ``mode='cartesian'``: element name -> explicit sequence of
            absolute values; members are the cartesian product in
            dict-insertion order.  ``mode='monte-carlo'``: element name
            -> relative half-width ``s`` in ``(0, 1)`` (uniform in
            ``nominal * [1 - s, 1 + s]``) or absolute ``(low, high)``
            pair.
        n:
            Number of Monte-Carlo members (required for
            ``mode='monte-carlo'``).
        seed:
            Seed of the parent-side ``numpy.random.default_rng``.  The
            member list depends only on ``(params, n, seed)`` -- never
            on ``jobs`` or the executor backend -- so a seeded ensemble
            is exactly reproducible, serial or parallel.
        u:
            Optional shared input override; by default each member is
            driven by its own deck's source waveforms
            (``netlist.input_function()``).
        outputs:
            Optional node names forwarded to the MNA assembler (member
            outputs become those node voltages).
        sparse:
            Storage mode forwarded to
            :func:`~repro.circuits.mna.assemble_mna`.
        """
        from ..circuits.mna import assemble_mna_restamp

        if not params:
            raise EnsembleError("variations requires at least one parameter")
        if mode not in ("cartesian", "monte-carlo"):
            raise EnsembleError(
                f"mode must be 'cartesian' or 'monte-carlo', got {mode!r}"
            )

        def member(overrides: dict[str, float]) -> EnsembleMember:
            varied = base.with_values(overrides)
            system = assemble_mna_restamp(varied, base, outputs=outputs, sparse=sparse)
            member_u = u if u is not None else varied.input_function()
            return EnsembleMember(
                system=system,
                u=member_u,
                label=_member_label(overrides),
                params=overrides,
            )

        members: list[EnsembleMember] = []
        if mode == "cartesian":
            if n is not None:
                raise EnsembleError("n= is only meaningful for mode='monte-carlo'")
            names = list(params)
            grids = []
            for name in names:
                values = params[name]
                if np.isscalar(values):
                    raise EnsembleError(
                        f"cartesian values for {name!r} must be a sequence; "
                        "use mode='monte-carlo' for spread specifications"
                    )
                grids.append([float(v) for v in values])
            for combo in itertools.product(*grids):
                members.append(member(dict(zip(names, combo))))
        else:
            if n is None or int(n) < 1:
                raise EnsembleError("mode='monte-carlo' requires n >= 1 members")
            nominal = base.element_values()
            for name in params:
                if name not in nominal:
                    raise EnsembleError(
                        f"unknown element {name!r}; base netlist has "
                        f"{sorted(nominal)}"
                    )
            rng = np.random.default_rng(seed)
            for _ in range(int(n)):
                overrides = {
                    name: _draw_value(rng, nominal[name], spec)
                    for name, spec in params.items()
                }
                members.append(member(overrides))
        return cls(members)

    @classmethod
    def from_spec(cls, base, spec: Mapping[str, Any], *, outputs=None) -> "Ensemble":
        """Build variations from a JSON-style specification mapping.

        The CLI's ``--ensemble spec.json`` accepts::

            {"mode": "monte-carlo", "n": 64, "seed": 7,
             "params": {"R1": 0.2, "C1": [0.9e-6, 1.1e-6]}}

        ``mode`` defaults to ``'cartesian'``; unknown keys raise.  An
        explicit ``outputs=`` argument (the CLI's ``--outputs``) wins
        over the spec's ``"outputs"`` entry.
        """
        allowed = {"mode", "n", "seed", "params", "outputs"}
        unknown = set(spec) - allowed
        if unknown:
            raise EnsembleError(
                f"unknown ensemble spec keys {sorted(unknown)}; "
                f"allowed keys are {sorted(allowed)}"
            )
        if "params" not in spec or not isinstance(spec["params"], Mapping):
            raise EnsembleError(
                "ensemble spec requires a 'params' mapping of element "
                "name -> values/spread"
            )
        return cls.variations(
            base,
            spec["params"],
            mode=spec.get("mode", "cartesian"),
            n=spec.get("n"),
            seed=spec.get("seed"),
            outputs=outputs if outputs is not None else spec.get("outputs"),
        )


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EnsembleChunk:
    """One completed task's worth of results, streamed in completion order.

    Attributes
    ----------
    indices:
        Ensemble member indices covered by this chunk (one fingerprint
        group, or a column shard of one).
    coefficients:
        State coefficient tensor ``(len(indices), n, m)``.
    input_coefficients:
        Input coefficient tensor ``(len(indices), p, m)``.
    factorisations:
        Pencil factorisations the worker performed for this chunk
        (1 for a healthy group).
    wall_time:
        Worker-side solve seconds for the chunk.
    """

    indices: tuple[int, ...]
    coefficients: np.ndarray
    input_coefficients: np.ndarray
    factorisations: int
    wall_time: float


class EnsembleResult:
    """Member-ordered results of an ensemble execution.

    Indexing yields per-member
    :class:`~repro.core.result.SimulationResult` objects (built against
    each member's own system, so outputs honour per-member ``C``/``D``);
    :meth:`states` / :meth:`outputs` sample the whole ensemble into one
    ``(k, n, nt)`` tensor.
    """

    def __init__(
        self,
        basis: BasisSet,
        ensemble: Ensemble,
        chunks: Sequence[EnsembleChunk],
        *,
        wall_time: float | None = None,
        info: dict | None = None,
    ) -> None:
        self.basis = basis
        self.ensemble = ensemble
        self.chunks = list(chunks)
        self.wall_time = wall_time
        self.info = dict(info or {})
        k = len(ensemble)
        self._coefficients: list[np.ndarray | None] = [None] * k
        self._inputs: list[np.ndarray | None] = [None] * k
        for chunk in self.chunks:
            for row, index in enumerate(chunk.indices):
                self._coefficients[index] = chunk.coefficients[row]
                self._inputs[index] = chunk.input_coefficients[row]
        missing = [i for i, c in enumerate(self._coefficients) if c is None]
        if missing:
            raise EnsembleError(
                f"ensemble result is missing members {missing}; "
                "chunks do not cover the ensemble"
            )

    @property
    def n_members(self) -> int:
        """Number of ensemble members."""
        return len(self.ensemble)

    @property
    def labels(self) -> list[str]:
        """Member labels (``'member-<i>'`` when unnamed)."""
        return [
            m.label if m.label is not None else f"member-{i}"
            for i, m in enumerate(self.ensemble)
        ]

    @property
    def params(self) -> list[Mapping[str, float]]:
        """Per-member parameter overrides."""
        return [m.params for m in self.ensemble]

    @property
    def coefficients(self) -> np.ndarray:
        """Stacked state coefficients ``(k, n, m)`` (homogeneous ensembles)."""
        return np.stack(self._coefficients)

    @property
    def input_coefficients(self) -> np.ndarray:
        """Stacked input coefficients ``(k, p, m)`` (homogeneous ensembles)."""
        return np.stack(self._inputs)

    def __len__(self) -> int:
        return self.n_members

    def __getitem__(self, index: int) -> SimulationResult:
        idx = range(self.n_members)[index]
        member = self.ensemble[idx]
        info = dict(self.info)
        info["ensemble_index"] = idx
        if member.label is not None:
            info["label"] = member.label
        return SimulationResult(
            self.basis,
            self._coefficients[idx],
            member.system,
            self._inputs[idx],
            wall_time=None,
            info=info,
        )

    def __iter__(self) -> Iterator[SimulationResult]:
        for idx in range(self.n_members):
            yield self[idx]

    @property
    def results(self) -> list[SimulationResult]:
        """All members as :class:`SimulationResult` objects."""
        return list(self)

    def states(self, times) -> np.ndarray:
        """Sample every member's state trajectory: ``(k, n, len(times))``."""
        values = self.basis.evaluate(np.atleast_1d(times))
        return self.coefficients @ values

    def outputs(self, times) -> np.ndarray:
        """Sample every member's output trajectory: ``(k, q, len(times))``."""
        return np.stack([res.outputs(times) for res in self])

    def __repr__(self) -> str:
        return (
            f"EnsembleResult(k={self.n_members}, basis={self.basis.name}, "
            f"chunks={len(self.chunks)}, wall_time={self.wall_time})"
        )


# ----------------------------------------------------------------------
# task planning and shipping
# ----------------------------------------------------------------------
#: Load-balance granularity: the planner packs pencil groups into about
#: ``jobs * TASKS_PER_WORKER`` tasks, so per-task overheads (pickling,
#: segment setup, pool round-trips) amortise over several groups while
#: stragglers can still be balanced across workers.
TASKS_PER_WORKER = 2


@dataclass
class _Task:
    """One worker work item: a bundle of pencil-group *units*.

    Each unit is one fingerprint group (or a column shard of one): the
    worker factorises its pencil once and sweeps its members in a
    single batched multi-RHS call.  The parent's own references to the
    shipped ``U`` blocks live in ``_RunState.task_inputs`` -- NOT on
    the task -- so the process backend never pickles them a second
    time alongside the shared-memory copy.
    """

    task_id: int
    units: list
    payload: dict
    shm_name: str | None = None
    out_name: str | None = None


def _plan_units(
    members: Sequence[EnsembleMember], jobs: int
) -> tuple[list[tuple[tuple[int, ...], Any]], int]:
    """Group members by pencil fingerprint, then shard oversized groups.

    Returns ``(units, n_groups)`` where each unit is a
    ``(member_indices, system)`` tuple.  The plan is deterministic
    (first appearance of each fingerprint; shards in member order) and
    depends only on ``jobs`` -- never on the executor backend -- so
    serial and parallel executions batch the very same multi-RHS
    solves.
    """
    groups: dict[tuple, list[int]] = {}
    systems: dict[tuple, Any] = {}
    for index, member in enumerate(members):
        system = member.system
        if isinstance(system, DescriptorSystem):
            # the full solve configuration must match, not just the
            # pencil: members differing only in B (a varied source
            # scale) or x0 must NOT share a group, or they would all be
            # solved against the first member's system
            offset = (
                system.offset
                if isinstance(system, OffsetDescriptorSystem)
                else None
            )
            key = (
                type(system).__name__,
                float(getattr(system, "alpha", 1.0)),
                pencil_fingerprint(system.E, system.A),
                pencil_fingerprint(system.B),
                None if system.x0 is None else system.x0.tobytes(),
                None if offset is None else offset.tobytes(),
            )
        else:  # multi-term and friends: conservative identity grouping
            key = ("id", id(system))
        groups.setdefault(key, []).append(index)
        systems.setdefault(key, system)
    target = max(1, math.ceil(len(members) / max(1, jobs)))
    units: list[tuple[tuple[int, ...], Any]] = []
    for key, indices in groups.items():
        for start in range(0, len(indices), target):
            shard = tuple(indices[start : start + target])
            units.append((shard, systems[key]))
    return units, len(groups)


def _pack_units(units: list, jobs: int) -> list[list]:
    """Distribute units contiguously over about ``jobs * 2`` tasks.

    Deterministic and backend-independent: only the *grouping into
    tasks* changes with ``jobs``, never the per-unit batched solves, so
    results stay bit-identical across backends and worker counts.
    """
    n_tasks = min(len(units), max(1, jobs) * TASKS_PER_WORKER)
    base, extra = divmod(len(units), n_tasks)
    packed: list[list] = []
    start = 0
    for t in range(n_tasks):
        size = base + (1 if t < extra else 0)
        packed.append(units[start : start + size])
        start += size
    return packed


def _describe_system(system) -> tuple[str, dict, dict[str, np.ndarray]]:
    """Split a system into ``(kind, meta, dense arrays)`` for shipping.

    Dense descriptor systems decompose into shippable float64 arrays;
    anything else (sparse storage, multi-term models) falls back to one
    pickled blob -- sparse matrices pickle compactly anyway.
    """
    if isinstance(system, DescriptorSystem) and not any(
        hasattr(matrix, "toarray") for matrix in (system.E, system.A)
    ):
        arrays = {
            "E": np.ascontiguousarray(system.E, dtype=float),
            "A": np.ascontiguousarray(system.A, dtype=float),
            "B": np.ascontiguousarray(system.B, dtype=float),
        }
        meta: dict[str, Any] = {}
        if system.x0 is not None:
            arrays["x0"] = np.ascontiguousarray(system.x0, dtype=float)
        if isinstance(system, OffsetDescriptorSystem):
            if system.offset is not None:
                arrays["offset"] = np.ascontiguousarray(system.offset, dtype=float)
            return "reduced", meta, arrays
        if isinstance(system, FractionalDescriptorSystem):
            return "fractional", {"alpha": float(system.alpha)}, arrays
        return "descriptor", meta, arrays
    return "pickled", {"blob": pickle.dumps(_strip_outputs(system))}, {}


def _strip_outputs(system):
    """The solve needs neither ``C`` nor ``D``; don't ship them."""
    if isinstance(system, OffsetDescriptorSystem):
        return OffsetDescriptorSystem(
            system.E, system.A, system.B, offset=system.offset
        )
    if isinstance(system, FractionalDescriptorSystem):
        return FractionalDescriptorSystem(
            system.alpha, system.E, system.A, system.B, x0=system.x0
        )
    if isinstance(system, DescriptorSystem):
        return DescriptorSystem(system.E, system.A, system.B, x0=system.x0)
    return system


def _rebuild_system(kind: str, meta: dict, arrays: Mapping[str, np.ndarray]):
    if kind == "pickled":
        return pickle.loads(meta["blob"])
    x0 = arrays.get("x0")
    if kind == "reduced":
        return OffsetDescriptorSystem(
            arrays["E"], arrays["A"], arrays["B"], offset=arrays.get("offset")
        )
    if kind == "fractional":
        return FractionalDescriptorSystem(
            meta["alpha"], arrays["E"], arrays["A"], arrays["B"], x0=x0
        )
    return DescriptorSystem(arrays["E"], arrays["A"], arrays["B"], x0=x0)


def _pack_shm(arrays: Mapping[str, np.ndarray]):
    """Copy named float64 arrays into one shared-memory segment.

    Returns ``(shm, manifest)``; the manifest lists ``(key, shape,
    offset)`` entries (64-byte aligned).  The parent owns the segment
    and unlinks it once the task completes.
    """
    from multiprocessing import shared_memory

    align = 64
    manifest: list[tuple[str, tuple, int]] = []
    total = 0
    for key, arr in arrays.items():
        manifest.append((key, arr.shape, total))
        total += -(-arr.nbytes // align) * align
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    for (key, shape, offset), arr in zip(manifest, arrays.values()):
        view = np.ndarray(shape, dtype=np.float64, buffer=shm.buf, offset=offset)
        view[...] = arr
    return shm, manifest


def _attach_shm(name: str):
    """Attach to a parent-owned segment, resource-tracker-safely.

    Python >= 3.13 supports ``track=False``: the worker attaches
    without registering the segment at all (the parent owns and unlinks
    it).  On older versions the worker's attach re-registers the name
    with the resource tracker it shares with the parent -- a set
    insert, deduplicated against the parent's own registration -- so
    the parent's single ``unlink()`` still balances the books.  Never
    ``unregister`` manually here: that would strip the *parent's*
    entry from the shared tracker and make its later unlink double-free
    the registration.
    """
    from multiprocessing import shared_memory

    try:  # Python >= 3.13
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _execute_task(task: _Task) -> tuple[int, list]:
    """Worker body: per unit, rebuild the system, factorise once, sweep.

    Runs inline (serial), on a thread, or in a worker process; the only
    difference is where the payload arrays live.  Returns
    ``(task_id, results)`` with one ``(unit_index, status, value)``
    entry per unit: ``("ok", (X | None, factorisations, wall))`` --
    ``X`` is ``None`` when the coefficients were written into the
    parent-owned output segment instead of being pickled back -- or
    ``("error", exception)`` for a unit whose solve failed (its
    siblings still complete).
    """
    from .session import Simulator

    payload = task.payload
    shm = out = None
    try:
        if task.shm_name is not None:
            shm = _attach_shm(task.shm_name)
            arrays = {
                key: np.ndarray(shape, dtype=np.float64, buffer=shm.buf, offset=offset)
                for key, shape, offset in payload["manifest"]
            }
        else:
            arrays = payload["arrays"]
        out_views: dict[int, np.ndarray] = {}
        if task.out_name is not None:
            out = _attach_shm(task.out_name)
            out_views = {
                ui: np.ndarray(shape, dtype=np.float64, buffer=out.buf, offset=offset)
                for ui, shape, offset in payload["out_manifest"]
            }
        results: list[tuple[int, str, Any]] = []
        for ui, unit in enumerate(payload["units"]):
            try:
                unit_arrays = {
                    key.partition("/")[2]: value
                    for key, value in arrays.items()
                    if key.startswith(f"{ui}/")
                }
                U = unit_arrays.pop("U")
                system = _rebuild_system(unit["kind"], unit["meta"], unit_arrays)
                sim = Simulator(system, payload["grid"], **payload["session_kwargs"])
                sweep = sim.sweep([U[i] for i in range(U.shape[0])])
                if ui in out_views:
                    out_views[ui][...] = sweep.coefficients
                    X = None
                else:
                    # detach from worker-local buffers before pickling
                    X = np.ascontiguousarray(sweep.coefficients)
            except Exception as exc:  # noqa: BLE001 - reported per unit
                results.append((ui, "error", exc))
                continue
            wall = float(sweep.wall_time or 0.0)
            results.append((ui, "ok", (X, sim.factorisations, wall)))
        return task.task_id, results
    finally:
        if shm is not None:
            shm.close()
        if out is not None:
            out.close()


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class ParallelExecutor:
    """Sharded multi-core execution of circuit ensembles.

    Parameters
    ----------
    backend:
        ``'process'`` (default) -- a ``ProcessPoolExecutor``; the only
        backend that scales the Python-loop-heavy column sweep across
        cores.  ``'thread'`` -- a ``ThreadPoolExecutor``; useful when
        the work is dominated by BLAS calls that release the GIL, and
        for debugging.  ``'serial'`` -- run the very same task plan
        inline in submission order (the baseline the benchmarks compare
        against).
    jobs:
        Worker count (default: the usable CPU count).  The task plan
        depends on ``jobs`` but not on ``backend``, so
        ``ParallelExecutor('serial', jobs=8)`` performs bit-identical
        arithmetic to ``ParallelExecutor('process', jobs=8)``.

    Examples
    --------
    >>> from repro.core import DescriptorSystem
    >>> rc = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])
    >>> ens = Ensemble([(rc, 1.0), (rc, 2.0)])
    >>> result = ParallelExecutor("serial").run(ens, (5.0, 64))
    >>> result.n_members, result.info["n_groups"]
    (2, 1)
    """

    def __init__(self, backend: str = "process", jobs: int | None = None) -> None:
        if backend not in EXECUTOR_BACKENDS:
            raise EnsembleError(
                f"executor backend must be one of {EXECUTOR_BACKENDS}, "
                f"got {backend!r}"
            )
        if jobs is not None and int(jobs) < 1:
            raise EnsembleError(f"jobs must be >= 1, got {jobs}")
        self.backend = backend
        self.jobs = int(jobs) if jobs is not None else default_jobs()
        #: Names of every shared-memory segment this executor created
        #: (tests assert they are all unlinked after a run).
        self.shm_names_created: list[str] = []

    # ------------------------------------------------------------------
    def run(self, ensemble, grid, **kwargs) -> EnsembleResult:
        """Execute every member and gather an :class:`EnsembleResult`.

        Parameters
        ----------
        ensemble:
            An :class:`Ensemble`, or any iterable of ``(system, u)``
            pairs / :class:`EnsembleMember` objects.
        grid:
            Shared time grid: a :class:`~repro.basis.grid.TimeGrid`,
            ``(t_end, m)`` tuple, or a ready
            :class:`~repro.basis.base.BasisSet` instance.
        basis, u, projection, adaptive_method, history, solver_backend:
            See :meth:`iter_chunks`.

        Raises
        ------
        EnsembleError
            If any member failed.  The error records the failing member
            indices / label, chains the first original worker
            exception, and carries the successful chunks on
            ``exc.chunks`` -- a failing member never discards its
            siblings' completed work.
        """
        start = time.perf_counter()
        state = _RunState()
        chunks = list(self._stream(ensemble, grid, state, **kwargs))
        wall = time.perf_counter() - start
        if state.failures:
            raise self._ensemble_error(state, chunks) from state.failures[0][2]
        info = {
            "executor": self.backend,
            "jobs": self.jobs,
            "n_groups": state.n_groups,
            "n_tasks": state.n_tasks,
            "factorisations": sum(c.factorisations for c in chunks),
            "shm_bytes": state.shm_bytes,
            "basis": state.basis.name,
        }
        if state.n_reduced:
            info["mor"] = {
                "reduced_units": state.n_reduced,
                "bound": state.mor_bound,
            }
        return EnsembleResult(
            state.basis, state.ensemble, chunks, wall_time=wall, info=info
        )

    def iter_chunks(self, ensemble, grid, **kwargs) -> Iterator[EnsembleChunk]:
        """Stream :class:`EnsembleChunk` objects in completion order.

        Failed members are collected while the healthy chunks keep
        streaming; once the pool drains, an
        :class:`~repro.errors.EnsembleError` is raised for the failures
        (chaining the first original exception).

        Parameters
        ----------
        ensemble, grid:
            As in :meth:`run`.
        basis:
            Basis family name / instance shared by every member (see
            :class:`~repro.engine.session.Simulator`).
        u:
            Default input for members whose ``u`` is ``None``.
        projection, adaptive_method, history:
            Forwarded to each worker's session.
        solver_backend:
            Dense/sparse pencil-backend mode (``'auto'`` default) --
            distinct from the executor's own process/thread backend.
        reduce:
            Reduction specification (``'auto'`` / moment count /
            :class:`~repro.engine.reduction.ReductionPlan`).  The
            parent reduces each pencil-fingerprint group once, ships
            the small reduced pencils to the workers, and lifts the
            returned coefficients back to full order -- workers never
            see ``reduce``.
        """
        state = _RunState()
        yield from self._stream(ensemble, grid, state, **kwargs)
        if state.failures:
            raise self._ensemble_error(state, None) from state.failures[0][2]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensemble_error(self, state: "_RunState", chunks) -> EnsembleError:
        index, label, exc = state.failures[0]
        detail = f" ({label})" if label else ""
        more = (
            f" (+{len(state.failures) - 1} more failed member(s))"
            if len(state.failures) > 1
            else ""
        )
        return EnsembleError(
            f"ensemble member {index}{detail} failed: {exc}{more}",
            member_indices=tuple(sorted(i for i, _, _ in state.failures)),
            chunks=chunks,
        )

    def _stream(
        self,
        ensemble,
        grid,
        state: "_RunState",
        *,
        basis=None,
        u=None,
        projection: str | None = None,
        adaptive_method: str = "auto",
        history: str = "direct",
        solver_backend: str = "auto",
        reduce=None,
        memory="exact",
        memory_rtol: float | None = None,
    ) -> Iterator[EnsembleChunk]:
        from .inputs import project_input
        from .session import _resolve_session_basis

        if not isinstance(ensemble, Ensemble):
            ensemble = Ensemble(ensemble)
        state.ensemble = ensemble
        basis_obj = _resolve_session_basis(grid, basis, projection)
        state.basis = basis_obj
        # workers receive the fully resolved basis instance as the grid
        # spec, so every accepted (grid, basis) flavour ships the same
        # way and the worker session is exactly the parent's (memory
        # settings ride along so a compressed parent never silently
        # shards into exact-memory workers)
        session_kwargs = {
            "basis": None,
            "projection": None,
            "adaptive_method": adaptive_method,
            "history": history,
            "backend": solver_backend,
            "memory": memory,
            "memory_rtol": memory_rtol,
        }

        # project every input in the parent: workers never see callables
        projected: list[np.ndarray] = []
        for index, member in enumerate(ensemble):
            member_u = member.u if member.u is not None else u
            if member_u is None:
                raise EnsembleError(
                    f"ensemble member {index} has no input; give the member "
                    "a u or pass a default to run(..., u=...)"
                )
            projected.append(project_input(member_u, basis_obj, member.system.n_inputs))

        units, state.n_groups = _plan_units(ensemble.members, self.jobs)
        # reduction happens HERE, in the parent, once per fingerprint
        # group (the reduced-model cache dedupes shards of one group):
        # workers receive only the small reduced pencils -- smaller shm
        # segments -- and the parent lifts the coefficients on return
        if reduce is not None:
            reduced_units = []
            for indices, system in units:
                model, mor_info = bind_reduction(
                    system, reduce, t_end=basis_obj.t_end, m=basis_obj.size
                )
                if model is not None:
                    state.n_reduced += 1
                    state.mor_bound = max(state.mor_bound, model.bound)
                    reduced_units.append((indices, model.solve_system, model))
                else:
                    reduced_units.append((indices, system, None))
            units = reduced_units
            if state.n_reduced:
                state.lift_ones = project_input(1.0, basis_obj, 1)[0]
        else:
            units = [(indices, system, None) for indices, system in units]
        packed = _pack_units(units, self.jobs)
        state.n_tasks = len(packed)
        tasks = [
            self._build_task(
                task_id, task_units, projected, basis_obj, session_kwargs, state
            )
            for task_id, task_units in enumerate(packed)
        ]

        try:
            if self.backend == "serial":
                for task in tasks:
                    try:
                        _, results = _execute_task(task)
                    except Exception as exc:
                        self._record_task_failure(task, exc, state)
                        continue
                    yield from self._handle_completion(task, results, state)
            else:
                with self._pool() as pool:
                    futures = {pool.submit(_execute_task, task): task for task in tasks}
                    pending = set(futures)
                    while pending:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            task = futures[future]
                            exc = future.exception()
                            if exc is not None:
                                self._record_task_failure(task, exc, state)
                                continue
                            _, results = future.result()
                            yield from self._handle_completion(task, results, state)
        finally:
            # failure-proof cleanup: any segment not yet unlinked
            # (failed tasks, cancelled futures, generator closed early)
            for key in list(state.shm_segments):
                shm = state.shm_segments.pop(key)
                shm.close()
                shm.unlink()

    def _build_task(
        self, task_id, task_units, projected, basis_obj, session_kwargs, state
    ) -> _Task:
        units_payload: list[dict] = []
        all_arrays: dict[str, np.ndarray] = {}
        inputs: dict[int, np.ndarray] = {}
        out_shapes: list[tuple[int, tuple[int, int, int]]] = []
        shippable = True
        models: dict[int, Any] = {}
        for ui, (indices, system, model) in enumerate(task_units):
            kind, meta, arrays = _describe_system(system)
            shippable = shippable and kind != "pickled"
            U = np.ascontiguousarray(
                np.stack([projected[i] for i in indices]), dtype=float
            )
            inputs[ui] = U
            if model is not None:
                models[ui] = model
            units_payload.append({"kind": kind, "meta": meta})
            for key, arr in arrays.items():
                all_arrays[f"{ui}/{key}"] = arr
            all_arrays[f"{ui}/U"] = U
            # reduced units allocate n_r-state output blocks: the lift
            # back to full order happens parent-side on completion
            out_shapes.append((ui, (len(indices), system.n_states, basis_obj.size)))
        payload = {
            "units": units_payload,
            "grid": basis_obj,
            "session_kwargs": session_kwargs,
        }
        task = _Task(
            task_id=task_id,
            units=[tuple(indices) for indices, _, _ in task_units],
            payload=payload,
        )
        state.task_models[task_id] = models
        state.task_inputs[task_id] = inputs
        nbytes = sum(a.nbytes for a in all_arrays.values())
        use_shm = self.backend == "process" and shippable and nbytes >= SHM_MIN_BYTES
        if use_shm:
            try:
                shm, manifest = _pack_shm(all_arrays)
            except (OSError, ValueError):  # no usable /dev/shm: fall back
                use_shm = False
            else:
                task.shm_name = shm.name
                payload["manifest"] = manifest
                state.shm_segments[(task_id, "in")] = shm
                state.shm_bytes += nbytes
                self.shm_names_created.append(shm.name)
        if not use_shm:
            payload["arrays"] = all_arrays
        if use_shm:
            # results come back through a parent-owned segment too, so
            # large coefficient tensors are never pickled either way
            out_arrays = {str(ui): np.zeros(shape) for ui, shape in out_shapes}
            try:
                out_shm, out_manifest = _pack_shm(out_arrays)
            except (OSError, ValueError):  # pragma: no cover - no /dev/shm
                pass
            else:
                task.out_name = out_shm.name
                payload["out_manifest"] = [
                    (int(key), shape, offset)
                    for key, shape, offset in out_manifest
                ]
                state.shm_segments[(task_id, "out")] = out_shm
                self.shm_names_created.append(out_shm.name)
        return task

    def _pool(self):
        if self.backend == "thread":
            from concurrent.futures import ThreadPoolExecutor

            return ThreadPoolExecutor(max_workers=self.jobs)
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_limit_worker_blas
        )

    def _handle_completion(
        self, task: _Task, results: list, state: "_RunState"
    ) -> Iterator[EnsembleChunk]:
        """Turn one finished task into per-unit chunks, then unlink its
        segments (the output segment is read *before* the unlink)."""
        out_shm = state.shm_segments.get((task.task_id, "out"))
        out_offsets = {
            ui: (shape, offset)
            for ui, shape, offset in task.payload.get("out_manifest", ())
        }
        chunks: list[EnsembleChunk] = []
        for ui, status, value in results:
            indices = task.units[ui]
            if status == "error":
                # the whole unit failed together: every member of the
                # batched solve is unaccounted for, not just the first
                for idx in indices:
                    state.failures.append((idx, state.ensemble[idx].label, value))
                continue
            X, factorisations, wall = value
            if X is None:
                shape, offset = out_offsets[ui]
                view = np.ndarray(
                    shape, dtype=np.float64, buffer=out_shm.buf, offset=offset
                )
                X = np.array(view, copy=True)
            model = state.task_models.get(task.task_id, {}).get(ui)
            if model is not None:
                # lift the reduced shifted coefficients back to full
                # order: x = V z + x0 (deterministic parent-side GEMM,
                # so serial/thread/process stay bit-identical)
                X = np.einsum("nr,krm->knm", model.V, X)
                x0 = model.full.x0
                if x0 is not None:
                    X = X + x0[None, :, None] * state.lift_ones[None, None, :]
            chunks.append(
                EnsembleChunk(
                    indices=indices,
                    coefficients=X,
                    input_coefficients=state.task_inputs[task.task_id][ui],
                    factorisations=int(factorisations),
                    wall_time=float(wall),
                )
            )
        self._release_task_shm(task, state)
        yield from chunks

    def _release_task_shm(self, task: _Task, state: "_RunState") -> None:
        for kind in ("in", "out"):
            shm = state.shm_segments.pop((task.task_id, kind), None)
            if shm is not None:
                shm.close()
                shm.unlink()

    def _record_task_failure(
        self, task: _Task, exc: Exception, state: "_RunState"
    ) -> None:
        """A whole-task failure (infrastructure, not a solve): every
        member of every unit of the task failed with the same cause."""
        self._release_task_shm(task, state)
        for indices in task.units:
            for idx in indices:
                state.failures.append((idx, state.ensemble[idx].label, exc))


class _RunState:
    """Per-run bookkeeping shared between planning and streaming."""

    def __init__(self) -> None:
        self.ensemble: Ensemble | None = None
        self.basis: BasisSet | None = None
        self.failures: list[tuple[int, str | None, Exception]] = []
        self.shm_segments: dict[tuple[int, str], Any] = {}
        self.task_inputs: dict[int, dict[int, np.ndarray]] = {}
        self.task_models: dict[int, dict[int, Any]] = {}
        self.shm_bytes = 0
        self.n_groups = 0
        self.n_tasks = 0
        self.n_reduced = 0
        self.mor_bound = 0.0
        self.lift_ones: np.ndarray | None = None

"""Netlist-native simulation sessions: the SPICE front door.

This module turns a parsed :class:`~repro.circuits.netlist.Netlist`
(or a ``.cir`` file) directly into engine work, executing the deck's
:class:`~repro.circuits.cards.AnalysisSpec`:

* :func:`build_system` -- MNA assembly honouring ``.ic`` initial node
  voltages;
* :func:`from_netlist` (also reachable as
  :meth:`repro.Simulator.from_netlist`) -- a warm cached
  :class:`~repro.engine.session.Simulator` whose grid, basis, and
  backend default to the deck's ``.tran`` / ``.options`` cards and
  whose input channels are bound to the parsed source waveforms, so
  ``sim.run()`` needs no arguments;
* :func:`ac_scan` -- ``.ac`` small-signal sweeps through
  :func:`repro.analysis.frequency.frequency_response`, driven by the
  sources' ``AC`` magnitudes;
* :func:`simulate_netlist` -- the one-call driver: parse, assemble,
  run every requested analysis (``.tran`` through ``run``/``march``,
  ``.ac`` through the frequency sweep), and return a
  :class:`NetlistRun`.

Example
-------
>>> from repro.engine.netlist_session import simulate_netlist
>>> run = simulate_netlist('''
... I1 0 n1 SIN(0 1m 100)
... R1 n1 0 1k
... C1 n1 0 1u
... .tran 50u 10m
... ''')
>>> run.tran.info['basis']
'BlockPulse'
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.frequency import frequency_response
from ..circuits.cards import AcCard
from ..circuits.mna import assemble_mna
from ..circuits.netlist import Netlist
from ..errors import NetlistError
from .reduction import combine_reduce_options
from .session import Simulator

__all__ = [
    "build_system",
    "from_netlist",
    "ac_scan",
    "simulate_netlist",
    "AcScan",
    "NetlistRun",
]

#: Transient methods served natively by the cached-session engine; any
#: other name is routed through :func:`repro.core.dispatch.simulate`.
_SESSION_METHODS = ("opm", "opm-windowed")


def _as_netlist(source, title: str = "") -> Netlist:
    """Coerce a :class:`Netlist`, deck text, or file path to a netlist.

    A string containing a newline is parsed as deck text; anything else
    (plain string or :class:`~pathlib.Path`) is read as a file.
    """
    if isinstance(source, Netlist):
        return source
    if isinstance(source, str) and "\n" in source:
        return Netlist.from_spice(source, title=title)
    return Netlist.from_spice_file(source)


def _memory_is_exact(memory) -> bool:
    """True when a ``memory=`` setting names the exact (uncompressed) mode."""
    return memory is None or (
        isinstance(memory, str)
        and memory.lower() in ("exact", "off", "none", "false", "")
    )


def build_system(netlist: Netlist, outputs=None, *, sparse: str = "auto",
                 use_ic: bool = True):
    """Assemble the netlist's MNA model, honouring its ``.ic`` card.

    Thin wrapper over :func:`repro.circuits.mna.assemble_mna` that
    threads the deck's initial node voltages into the model's ``x0``
    (disable with ``use_ic=False``).
    """
    ic = netlist.analysis.ic if use_ic else None
    return assemble_mna(netlist, outputs=outputs, sparse=sparse, ic=ic)


def from_netlist(
    netlist,
    grid=None,
    *,
    outputs=None,
    basis=None,
    sparse: str = "auto",
    use_ic: bool = True,
    **session_kwargs,
) -> Simulator:
    """Build a cached :class:`Simulator` session straight from a netlist.

    Parameters
    ----------
    netlist:
        A :class:`Netlist`, deck text (with newlines), or ``.cir`` path.
    grid:
        Session grid (:class:`~repro.basis.grid.TimeGrid`, ``(t_end,
        m)`` tuple, or basis instance).  ``None`` derives it from the
        deck's ``.tran`` card: horizon ``tstop``, term count from
        ``.options m=`` or ``round(tstop / tstep)``.
    outputs:
        Node names to expose as model outputs (default: every node).
    basis:
        Basis family; ``None`` defers to ``.options basis=`` (block
        pulse when the deck is silent).
    sparse, use_ic:
        Forwarded to :func:`build_system`.
    **session_kwargs:
        Forwarded to :class:`Simulator` (``backend`` defaults to the
        deck's ``.options backend=``).

    The parsed source waveforms are bound to the session
    (:meth:`Simulator.bind_input`), so ``sim.run()`` and
    ``sim.march(None, t_end)`` simulate the deck's own drive without
    re-supplying it.

    Examples
    --------
    >>> sim = from_netlist('''
    ... I1 0 n1 1m
    ... R1 n1 0 1k
    ... C1 n1 0 1u
    ... .tran 50u 5m
    ... ''')
    >>> sim.grid.m, sim.runs
    (100, 0)
    >>> bool(abs(sim.run().states([5e-3])[0, 0] - 1.0) < 1e-2)
    True
    """
    netlist = _as_netlist(netlist)
    spec = netlist.analysis
    output_names = list(outputs) if outputs is not None else list(netlist.nodes)
    system = build_system(netlist, outputs=output_names, sparse=sparse, use_ic=use_ic)
    if grid is None:
        if spec.tran is None:
            raise NetlistError(
                "cannot derive a session grid: the deck has no .tran card; "
                "pass grid=(t_end, m) explicitly"
            )
        grid = (spec.tran.tstop, spec.m or spec.tran.steps)
    if basis is None:
        basis = spec.basis
    if "backend" not in session_kwargs and spec.backend is not None:
        session_kwargs["backend"] = spec.backend
    if "reduce" not in session_kwargs:
        deck_reduce = combine_reduce_options(spec.reduce, spec.mor_order)
        if deck_reduce is not None:
            session_kwargs["reduce"] = deck_reduce
    if "memory" not in session_kwargs and spec.memory is not None:
        session_kwargs["memory"] = spec.memory
    if (
        "memory_rtol" not in session_kwargs
        and spec.memory_rtol is not None
        and not _memory_is_exact(session_kwargs.get("memory", "exact"))
    ):
        session_kwargs["memory_rtol"] = spec.memory_rtol
    sim = Simulator(system, grid, basis=basis, **session_kwargs)
    sim.bind_input(netlist.input_function())
    return sim


@dataclass(frozen=True)
class AcScan:
    """Result of one ``.ac`` small-signal sweep.

    ``response[k, j]`` is the complex phasor of output ``outputs[j]``
    at ``frequencies[k]`` hertz, for the excitation declared by the
    sources' ``AC`` magnitudes (see
    :meth:`~repro.circuits.netlist.Netlist.ac_vector`).
    """

    frequencies: np.ndarray
    response: np.ndarray
    outputs: tuple[str, ...]
    card: AcCard

    @property
    def n_points(self) -> int:
        return int(self.frequencies.size)

    def magnitude(self) -> np.ndarray:
        """``|H|`` per point and output, shape ``(nf, q)``."""
        return np.abs(self.response)

    def magnitude_db(self) -> np.ndarray:
        """``20 log10 |H|`` per point and output, shape ``(nf, q)``."""
        with np.errstate(divide="ignore"):
            return 20.0 * np.log10(np.abs(self.response))

    def phase_deg(self) -> np.ndarray:
        """Phase in degrees per point and output, shape ``(nf, q)``."""
        return np.degrees(np.angle(self.response))

    def __repr__(self) -> str:
        return (
            f"AcScan({self.n_points} points, "
            f"{self.frequencies[0]:g}..{self.frequencies[-1]:g} Hz, "
            f"outputs={list(self.outputs)})"
        )


def ac_scan(netlist, system=None, card=None, *, outputs=None) -> AcScan:
    """Run an ``.ac`` sweep of a netlist through the transfer function.

    Parameters
    ----------
    netlist:
        A :class:`Netlist`, deck text, or file path.
    system:
        Pre-assembled model (assembled from the netlist when ``None``;
        its outputs must match ``outputs``).
    card:
        The sweep card (default: the deck's ``.ac`` card).
    outputs:
        Output node names (default: every node).

    Examples
    --------
    >>> scan = ac_scan('''
    ... I1 0 n1 AC 1
    ... R1 n1 0 1k
    ... C1 n1 0 1u
    ... .ac dec 1 1 1000
    ... ''')
    >>> scan.n_points, float(round(scan.magnitude()[0, 0], 2))
    (4, 999.98)
    """
    netlist = _as_netlist(netlist)
    if card is None:
        card = netlist.analysis.ac
        if card is None:
            raise NetlistError(
                "AC analysis requested but the deck has no .ac card"
            )
    output_names = tuple(outputs) if outputs is not None else tuple(netlist.nodes)
    if system is None:
        system = build_system(netlist, outputs=output_names)
    H = frequency_response(system, card.omegas())  # (nf, q, p)
    excitation = netlist.ac_vector()
    response = np.einsum("fqp,p->fq", H, excitation)
    return AcScan(
        frequencies=card.frequencies(),
        response=response,
        outputs=output_names,
        card=card,
    )


@dataclass(frozen=True)
class NetlistRun:
    """Everything one deck's analyses produced.

    Attributes
    ----------
    netlist, system:
        The parsed circuit and its assembled model.
    outputs:
        Output node names, in the order of the result rows/columns.
    tran:
        The transient result
        (:class:`~repro.core.result.SimulationResult`,
        :class:`~repro.core.result.MarchingResult`, or a baseline's
        sampled result), ``None`` when no transient ran.
    ac:
        The :class:`AcScan`, ``None`` when no ``.ac`` sweep ran.
    """

    netlist: Netlist
    system: object
    outputs: tuple[str, ...]
    tran: object | None = None
    ac: AcScan | None = None
    ensemble: object | None = None

    def __repr__(self) -> str:
        ran = [
            label
            for label, result in (
                ("tran", self.tran),
                ("ac", self.ac),
                ("ensemble", self.ensemble),
            )
            if result is not None
        ]
        return (
            f"NetlistRun({self.netlist.title!r}, outputs={list(self.outputs)}, "
            f"analyses={ran})"
        )


def simulate_netlist(
    source,
    *,
    title: str = "",
    outputs=None,
    t_end: float | None = None,
    steps: int | None = None,
    basis=None,
    windows: int | None = None,
    method: str | None = None,
    backend: str | None = None,
    reduce=None,
    mor_order: int | None = None,
    memory=None,
    memory_rtol: float | None = None,
    sparse: str = "auto",
    use_ic: bool = True,
    ensemble=None,
    jobs: int | None = None,
    parallel: str = "process",
) -> NetlistRun:
    """Parse a deck and run every analysis it (or the caller) requests.

    The deck's cards provide the defaults -- ``.tran`` the horizon and
    term count, ``.options`` the basis / method / window count /
    backend -- and every keyword argument overrides its card.  The
    transient routes through a cached :class:`Simulator` session
    (``run``, or ``march`` when ``windows > 1``); other ``method``
    names (``'trapezoidal'``, ``'fft'``, ...) route through
    :func:`repro.core.dispatch.simulate`.  An ``.ac`` card adds a
    small-signal :func:`ac_scan`.

    Parameters
    ----------
    source:
        A :class:`Netlist`, deck text (with newlines), or file path.
    title:
        Title for text sources (file sources use the file stem).
    outputs:
        Output node names (default: every node).
    t_end, steps:
        Transient horizon / term count overrides.  A transient runs
        when the deck has a ``.tran`` card or ``t_end`` is given.
    basis, windows, method, backend:
        Overrides for the matching ``.options`` keys.
    reduce, mor_order:
        Certified model-order reduction: override ``.options reduce=``
        / ``.options mor_order=`` (session methods and ensembles only;
        see :mod:`repro.engine.reduction`).
    memory, memory_rtol:
        Fractional-memory compression: override ``.options memory=`` /
        ``.options memory_rtol=`` (session methods and the
        ``'grunwald-letnikov'`` baseline; see
        :mod:`repro.fractional.soe`).
    sparse, use_ic:
        Forwarded to :func:`build_system`.
    ensemble:
        Optional per-deck corner sweep / Monte-Carlo specification: a
        JSON-style dict (see
        :meth:`repro.engine.executor.Ensemble.from_spec`) or a ready
        :class:`~repro.engine.executor.Ensemble`.  The members are
        solved on the deck's transient grid across ``jobs`` workers
        (``parallel`` backend) and returned as
        :attr:`NetlistRun.ensemble`.

    Examples
    --------
    >>> run = simulate_netlist('''
    ... V1 in 0 DC 0 AC 1 SIN(0 1 100)
    ... R1 in out 1k
    ... C1 out 0 1u
    ... .tran 100u 10m
    ... .ac dec 2 10 10k
    ... ''')
    >>> run.tran is not None and run.ac is not None
    True
    >>> run.outputs
    ('in', 'out')
    """
    netlist = _as_netlist(source, title)
    spec = netlist.analysis
    output_names = tuple(outputs) if outputs is not None else tuple(netlist.nodes)
    system = build_system(netlist, outputs=output_names, sparse=sparse, use_ic=use_ic)

    method = method if method is not None else (spec.method or "opm")
    basis = basis if basis is not None else spec.basis
    backend = backend if backend is not None else (spec.backend or "auto")
    reduce = combine_reduce_options(
        reduce if reduce is not None else spec.reduce,
        mor_order if mor_order is not None else spec.mor_order,
    )
    memory = memory if memory is not None else (spec.memory or "exact")
    if memory_rtol is None and not _memory_is_exact(memory):
        # the deck's memory_rtol= card only applies when compression is
        # actually on (the caller may have overridden memory='exact')
        memory_rtol = spec.memory_rtol
    windows = int(windows) if windows is not None else (spec.windows or 1)
    if windows < 1:
        raise NetlistError(f"windows must be >= 1, got {windows}")
    if method not in _SESSION_METHODS and windows > 1:
        raise NetlistError(
            f"method {method!r} only supports a plain transient: windowed "
            "marching is an engine-session feature; drop the method or the "
            "windows setting"
        )

    tran = None
    if spec.tran is not None or t_end is not None:
        horizon = float(t_end) if t_end is not None else spec.tran.tstop
        m = int(steps) if steps is not None else (
            spec.m or (spec.tran.steps if spec.tran is not None else None)
        )
        if m is None:
            raise NetlistError(
                "transient requested without a term count: add a .tran card "
                "or pass steps="
            )
        u = netlist.input_function()
        if method not in _SESSION_METHODS:
            from ..core.dispatch import simulate

            method_kwargs: dict[str, object] = {}
            if method == "grunwald-letnikov":
                # The GL baseline is the only non-session method with a
                # history tail to compress.
                method_kwargs["memory"] = memory
                method_kwargs["memory_rtol"] = memory_rtol
            tran = simulate(
                system, u, horizon, m, method=method, basis=basis,
                **method_kwargs,
            )
        elif windows > 1 or method == "opm-windowed":
            if m % windows:
                raise NetlistError(
                    f"steps={m} must be divisible by windows={windows}"
                )
            sim = Simulator(
                system, (horizon / windows, m // windows),
                basis=basis, backend=backend, reduce=reduce,
                memory=memory, memory_rtol=memory_rtol,
            )
            tran = sim.march(u, horizon)
        else:
            sim = Simulator(
                system, (horizon, m), basis=basis, backend=backend, reduce=reduce,
                memory=memory, memory_rtol=memory_rtol,
            )
            tran = sim.run(u)

    ensemble_result = None
    if ensemble is not None:
        from .executor import Ensemble, ParallelExecutor

        if spec.tran is None and t_end is None:
            raise NetlistError(
                "an ensemble needs a transient grid: add a .tran card or "
                "pass t_end="
            )
        if not isinstance(ensemble, Ensemble):
            ensemble = Ensemble.from_spec(netlist, ensemble, outputs=output_names)
        horizon = float(t_end) if t_end is not None else spec.tran.tstop
        m = int(steps) if steps is not None else (
            spec.m or (spec.tran.steps if spec.tran is not None else None)
        )
        executor = ParallelExecutor(parallel, jobs=jobs)
        ensemble_result = executor.run(
            ensemble, (horizon, m), basis=basis, solver_backend=backend,
            reduce=reduce, memory=memory, memory_rtol=memory_rtol,
        )

    ac = None
    if spec.ac is not None:
        ac = ac_scan(netlist, system=system, card=spec.ac, outputs=output_names)

    return NetlistRun(
        netlist=netlist,
        system=system,
        outputs=output_names,
        tran=tran,
        ac=ac,
        ensemble=ensemble_result,
    )

"""Netlist-native simulation sessions: the SPICE front door.

This module turns a parsed :class:`~repro.circuits.netlist.Netlist`
(or a ``.cir`` file) directly into engine work, executing the deck's
:class:`~repro.circuits.cards.AnalysisSpec`:

* :func:`build_system` -- graph lint (floating nodes, missing DC
  paths; see :mod:`repro.circuits.graph`) followed by MNA assembly
  honouring ``.ic`` initial node voltages -- the single choke point
  every front door (library, CLI, service daemon) assembles through,
  so structural deck defects fail fast with named nodes/elements
  instead of a singular pencil deep in the solver;
* :func:`lint_netlist` -- the standalone lint report (the CLI's
  ``--lint`` flag and the service daemon's ``lint`` op);
* :func:`from_netlist` (also reachable as
  :meth:`repro.Simulator.from_netlist`) -- a warm cached
  :class:`~repro.engine.session.Simulator` whose grid, basis, and
  backend default to the deck's ``.tran`` / ``.options`` cards and
  whose input channels are bound to the parsed source waveforms, so
  ``sim.run()`` needs no arguments;
* :func:`ac_scan` -- ``.ac`` small-signal sweeps through
  :func:`repro.analysis.frequency.frequency_response`, driven by the
  sources' ``AC`` magnitudes;
* :func:`simulate_netlist` -- the one-call driver: parse,
  graph-analyse, assemble, run every requested analysis (``.tran``
  through ``run``/``march``, ``.ac`` through the frequency sweep), and
  return a :class:`NetlistRun`.  With ``jobs > 1`` a deck whose
  circuit graph has several connected components is split into
  per-component sub-pencils and solved in parallel through the
  :class:`~repro.engine.executor.ParallelExecutor` -- bit-identical to
  the monolithic solve (the monolithic pencil is a permuted
  block-diagonal of the component pencils, so dense partial-pivoted LU
  performs exactly the same arithmetic per block), re-stitched into a
  single :class:`~repro.core.result.SimulationResult` in the original
  monolithic state order.

Example
-------
>>> from repro.engine.netlist_session import simulate_netlist
>>> run = simulate_netlist('''
... I1 0 n1 SIN(0 1m 100)
... R1 n1 0 1k
... C1 n1 0 1u
... .tran 50u 10m
... ''')
>>> run.tran.info['basis']
'BlockPulse'
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.frequency import frequency_response
from ..circuits.cards import AcCard
from ..circuits.graph import CircuitGraph, LintReport
from ..circuits.mna import assemble_mna
from ..circuits.netlist import Netlist
from ..errors import NetlistError
from ..fractional.methods import FractionalMethod, validate_method_name
from .reduction import combine_reduce_options
from .session import Simulator

__all__ = [
    "build_system",
    "lint_netlist",
    "from_netlist",
    "ac_scan",
    "simulate_netlist",
    "AcScan",
    "NetlistRun",
]

#: Transient methods served natively by the cached-session engine; any
#: other name is routed through :func:`repro.core.dispatch.simulate`.
_SESSION_METHODS = ("opm", "opm-windowed")


def _as_netlist(source, title: str = "") -> Netlist:
    """Coerce a :class:`Netlist`, deck text, or file path to a netlist.

    A string containing a newline is parsed as deck text; anything else
    (plain string or :class:`~pathlib.Path`) is read as a file.
    """
    if isinstance(source, Netlist):
        return source
    if isinstance(source, str) and "\n" in source:
        return Netlist.from_spice(source, title=title)
    return Netlist.from_spice_file(source)


def _resolve_session_method(method):
    """Validate a ``method=`` for a warm session (:func:`from_netlist`).

    ``None`` / ``'opm'`` / ``'opm-windowed'`` name the native route
    (the window split is applied at simulate time, not session build);
    fractional zoo names and ready
    :class:`~repro.fractional.methods.FractionalMethod` instances pass
    through to the :class:`Simulator`; one-shot baseline names raise
    (they have no warm session to live on), and unknown names raise
    with the shared did-you-mean diagnostic.
    """
    if method is None or isinstance(method, FractionalMethod):
        return method
    from ..core.dispatch import FRACTIONAL_ZOO_METHODS, SIMULATION_METHODS

    key = validate_method_name(
        method, SIMULATION_METHODS, context="method", error=NetlistError
    )
    if key in _SESSION_METHODS:
        return None
    if key in FRACTIONAL_ZOO_METHODS:
        return key
    raise NetlistError(
        f"method {key!r} is a one-shot baseline and cannot run on a warm "
        "session; use simulate_netlist() for it, or pick 'opm' or one of "
        f"{FRACTIONAL_ZOO_METHODS}"
    )


def _memory_is_exact(memory) -> bool:
    """True when a ``memory=`` setting names the exact (uncompressed) mode."""
    return memory is None or (
        isinstance(memory, str)
        and memory.lower() in ("exact", "off", "none", "false", "")
    )


def lint_netlist(source, title: str = "") -> LintReport:
    """Graph-lint a deck without assembling or solving it.

    Parses ``source`` (netlist / deck text / path) and returns the
    :class:`~repro.circuits.graph.LintReport` of its circuit graph --
    floating nodes and components without a DC path, each naming the
    offending nodes/elements with a fix hint.  This is what the CLI's
    ``--lint`` flag and the service daemon's ``lint`` op expose.
    """
    return CircuitGraph(_as_netlist(source, title)).lint()


def build_system(netlist: Netlist, outputs=None, *, sparse: str = "auto",
                 use_ic: bool = True, lint: bool = True):
    """Graph-lint and assemble the netlist's MNA model.

    Wrapper over :func:`repro.circuits.mna.assemble_mna` that first
    runs the circuit-graph lint (floating nodes, missing DC path --
    ``lint=False`` skips it) so structural defects raise a
    :class:`~repro.errors.NetlistError` naming the offending
    nodes/elements *before* factorisation instead of surfacing as a
    :class:`~repro.errors.SingularPencilError` inside the solver, and
    then threads the deck's ``.ic`` initial node voltages into the
    model's ``x0`` (disable with ``use_ic=False``).
    """
    if lint:
        CircuitGraph(netlist).check()
    ic = netlist.analysis.ic if use_ic else None
    return assemble_mna(netlist, outputs=outputs, sparse=sparse, ic=ic)


def from_netlist(
    netlist,
    grid=None,
    *,
    outputs=None,
    basis=None,
    sparse: str = "auto",
    use_ic: bool = True,
    **session_kwargs,
) -> Simulator:
    """Build a cached :class:`Simulator` session straight from a netlist.

    Parameters
    ----------
    netlist:
        A :class:`Netlist`, deck text (with newlines), or ``.cir`` path.
    grid:
        Session grid (:class:`~repro.basis.grid.TimeGrid`, ``(t_end,
        m)`` tuple, or basis instance).  ``None`` derives it from the
        deck's ``.tran`` card: horizon ``tstop``, term count from
        ``.options m=`` or ``round(tstop / tstep)``.
    outputs:
        Node names to expose as model outputs (default: every node).
    basis:
        Basis family; ``None`` defers to ``.options basis=`` (block
        pulse when the deck is silent).
    sparse, use_ic:
        Forwarded to :func:`build_system`.
    **session_kwargs:
        Forwarded to :class:`Simulator` (``backend`` defaults to the
        deck's ``.options backend=``).

    The parsed source waveforms are bound to the session
    (:meth:`Simulator.bind_input`), so ``sim.run()`` and
    ``sim.march(None, t_end)`` simulate the deck's own drive without
    re-supplying it.

    Examples
    --------
    >>> sim = from_netlist('''
    ... I1 0 n1 1m
    ... R1 n1 0 1k
    ... C1 n1 0 1u
    ... .tran 50u 5m
    ... ''')
    >>> sim.grid.m, sim.runs
    (100, 0)
    >>> bool(abs(sim.run().states([5e-3])[0, 0] - 1.0) < 1e-2)
    True
    """
    netlist = _as_netlist(netlist)
    spec = netlist.analysis
    output_names = list(outputs) if outputs is not None else list(netlist.nodes)
    system = build_system(netlist, outputs=output_names, sparse=sparse, use_ic=use_ic)
    if grid is None:
        if spec.tran is None:
            raise NetlistError(
                "cannot derive a session grid: the deck has no .tran card; "
                "pass grid=(t_end, m) explicitly"
            )
        grid = (spec.tran.tstop, spec.m or spec.tran.steps)
    if basis is None:
        basis = spec.basis
    if "backend" not in session_kwargs and spec.backend is not None:
        session_kwargs["backend"] = spec.backend
    if "method" not in session_kwargs and spec.method is not None:
        session_kwargs["method"] = spec.method
    if "method" in session_kwargs:
        session_kwargs["method"] = _resolve_session_method(
            session_kwargs["method"]
        )
    if "reduce" not in session_kwargs:
        deck_reduce = combine_reduce_options(spec.reduce, spec.mor_order)
        if deck_reduce is not None:
            session_kwargs["reduce"] = deck_reduce
    if "memory" not in session_kwargs and spec.memory is not None:
        session_kwargs["memory"] = spec.memory
    if (
        "memory_rtol" not in session_kwargs
        and spec.memory_rtol is not None
        and not _memory_is_exact(session_kwargs.get("memory", "exact"))
    ):
        session_kwargs["memory_rtol"] = spec.memory_rtol
    sim = Simulator(system, grid, basis=basis, **session_kwargs)
    sim.bind_input(netlist.input_function())
    return sim


@dataclass(frozen=True)
class AcScan:
    """Result of one ``.ac`` small-signal sweep.

    ``response[k, j]`` is the complex phasor of output ``outputs[j]``
    at ``frequencies[k]`` hertz, for the excitation declared by the
    sources' ``AC`` magnitudes (see
    :meth:`~repro.circuits.netlist.Netlist.ac_vector`).
    """

    frequencies: np.ndarray
    response: np.ndarray
    outputs: tuple[str, ...]
    card: AcCard

    @property
    def n_points(self) -> int:
        return int(self.frequencies.size)

    def magnitude(self) -> np.ndarray:
        """``|H|`` per point and output, shape ``(nf, q)``."""
        return np.abs(self.response)

    def magnitude_db(self) -> np.ndarray:
        """``20 log10 |H|`` per point and output, shape ``(nf, q)``."""
        with np.errstate(divide="ignore"):
            return 20.0 * np.log10(np.abs(self.response))

    def phase_deg(self) -> np.ndarray:
        """Phase in degrees per point and output, shape ``(nf, q)``."""
        return np.degrees(np.angle(self.response))

    def __repr__(self) -> str:
        return (
            f"AcScan({self.n_points} points, "
            f"{self.frequencies[0]:g}..{self.frequencies[-1]:g} Hz, "
            f"outputs={list(self.outputs)})"
        )


def ac_scan(netlist, system=None, card=None, *, outputs=None) -> AcScan:
    """Run an ``.ac`` sweep of a netlist through the transfer function.

    Parameters
    ----------
    netlist:
        A :class:`Netlist`, deck text, or file path.
    system:
        Pre-assembled model (assembled from the netlist when ``None``;
        its outputs must match ``outputs``).
    card:
        The sweep card (default: the deck's ``.ac`` card).
    outputs:
        Output node names (default: every node).

    Examples
    --------
    >>> scan = ac_scan('''
    ... I1 0 n1 AC 1
    ... R1 n1 0 1k
    ... C1 n1 0 1u
    ... .ac dec 1 1 1000
    ... ''')
    >>> scan.n_points, float(round(scan.magnitude()[0, 0], 2))
    (4, 999.98)
    """
    netlist = _as_netlist(netlist)
    if card is None:
        card = netlist.analysis.ac
        if card is None:
            raise NetlistError(
                "AC analysis requested but the deck has no .ac card"
            )
    output_names = tuple(outputs) if outputs is not None else tuple(netlist.nodes)
    if system is None:
        system = build_system(netlist, outputs=output_names)
    H = frequency_response(system, card.omegas())  # (nf, q, p)
    excitation = netlist.ac_vector()
    response = np.einsum("fqp,p->fq", H, excitation)
    return AcScan(
        frequencies=card.frequencies(),
        response=response,
        outputs=output_names,
        card=card,
    )


def _component_state_rows(parent: Netlist, sub: Netlist) -> list[int]:
    """Monolithic state indices of one component's states, in sub order.

    MNA state order is node voltages (netlist node order), then
    inductor branch currents, then voltage-source branch currents, each
    in declaration order -- and a component sub-netlist preserves the
    parent's relative declaration order, so every sub state maps to a
    unique monolithic row by name.
    """
    n_nodes = parent.n_nodes
    l_row = {el.name: n_nodes + k for k, el in enumerate(parent.inductors)}
    n_l = len(l_row)
    v_row = {
        el.name: n_nodes + n_l + k
        for k, el in enumerate(parent.voltage_sources)
    }
    rows = [parent.node_index(node) for node in sub.nodes]
    rows += [l_row[el.name] for el in sub.inductors]
    rows += [v_row[el.name] for el in sub.voltage_sources]
    return rows


def _solve_split_components(
    netlist: Netlist,
    graph: CircuitGraph,
    system,
    *,
    horizon: float,
    m: int,
    basis,
    backend: str,
    memory,
    memory_rtol,
    sparse: str,
    use_ic: bool,
    jobs: int,
    parallel: str,
):
    """Solve each connected component as its own pencil, in parallel.

    Returns a :class:`~repro.core.result.SimulationResult` whose
    coefficients live in the *monolithic* state order -- bit-identical
    to the serial monolithic solve, because the monolithic pencil is a
    permuted block-diagonal of the component pencils: partial-pivoted
    LU never mixes blocks (cross-block entries are exactly zero), so
    each block sees exactly the arithmetic the sub-solve performs.
    """
    from ..core.result import SimulationResult
    from .executor import Ensemble, EnsembleMember, ParallelExecutor

    subs = graph.split()
    members = []
    for sub in subs:
        sub_system = build_system(
            sub, outputs=list(sub.nodes), sparse=sparse, use_ic=use_ic,
            lint=False,  # the parent deck was linted as a whole
        )
        members.append(
            EnsembleMember(
                system=sub_system, u=sub.input_function(), label=sub.title
            )
        )
    executor = ParallelExecutor(parallel, jobs=jobs)
    ensemble_result = executor.run(
        Ensemble(members), (horizon, m), basis=basis, solver_backend=backend,
        memory=memory, memory_rtol=memory_rtol,
    )

    first = ensemble_result[0]
    n_states = netlist.n_nodes + len(netlist.inductors) + len(netlist.voltage_sources)
    coefficients = np.zeros((n_states, first.basis.size))
    input_coefficients = np.zeros((netlist.n_channels, first.basis.size))
    source_channel = {
        el.name: el.channel
        for el in netlist.elements
        if hasattr(el, "channel")
    }
    wall_time = 0.0
    for sub, result in zip(subs, ensemble_result):
        coefficients[_component_state_rows(netlist, sub)] = result.coefficients
        for el in sub.elements:
            if hasattr(el, "channel"):
                input_coefficients[source_channel[el.name]] = (
                    result.input_coefficients[el.channel]
                )
        wall_time += result.wall_time or 0.0
    info = dict(first.info)
    info["split"] = {
        "components": len(subs),
        **{k: v for k, v in ensemble_result.info.items() if k != "basis"},
    }
    return SimulationResult(
        first.basis,
        coefficients,
        system,
        input_coefficients,
        wall_time=wall_time,
        info=info,
    )


@dataclass(frozen=True)
class NetlistRun:
    """Everything one deck's analyses produced.

    Attributes
    ----------
    netlist, system:
        The parsed circuit and its assembled model.
    outputs:
        Output node names, in the order of the result rows/columns.
    tran:
        The transient result
        (:class:`~repro.core.result.SimulationResult`,
        :class:`~repro.core.result.MarchingResult`, or a baseline's
        sampled result), ``None`` when no transient ran.
    ac:
        The :class:`AcScan`, ``None`` when no ``.ac`` sweep ran.
    """

    netlist: Netlist
    system: object
    outputs: tuple[str, ...]
    tran: object | None = None
    ac: AcScan | None = None
    ensemble: object | None = None

    def __repr__(self) -> str:
        ran = [
            label
            for label, result in (
                ("tran", self.tran),
                ("ac", self.ac),
                ("ensemble", self.ensemble),
            )
            if result is not None
        ]
        return (
            f"NetlistRun({self.netlist.title!r}, outputs={list(self.outputs)}, "
            f"analyses={ran})"
        )


def simulate_netlist(
    source,
    *,
    title: str = "",
    outputs=None,
    t_end: float | None = None,
    steps: int | None = None,
    basis=None,
    windows: int | None = None,
    method: str | None = None,
    backend: str | None = None,
    reduce=None,
    mor_order: int | None = None,
    memory=None,
    memory_rtol: float | None = None,
    sparse: str = "auto",
    use_ic: bool = True,
    ensemble=None,
    jobs: int | None = None,
    parallel: str = "process",
) -> NetlistRun:
    """Parse a deck and run every analysis it (or the caller) requests.

    The deck's cards provide the defaults -- ``.tran`` the horizon and
    term count, ``.options`` the basis / method / window count /
    backend -- and every keyword argument overrides its card.  The
    transient routes through a cached :class:`Simulator` session
    (``run``, or ``march`` when ``windows > 1``); other ``method``
    names (``'trapezoidal'``, ``'fft'``, ...) route through
    :func:`repro.core.dispatch.simulate`.  An ``.ac`` card adds a
    small-signal :func:`ac_scan`.

    Parameters
    ----------
    source:
        A :class:`Netlist`, deck text (with newlines), or file path.
    title:
        Title for text sources (file sources use the file stem).
    outputs:
        Output node names (default: every node).
    t_end, steps:
        Transient horizon / term count overrides.  A transient runs
        when the deck has a ``.tran`` card or ``t_end`` is given.
    basis, windows, method, backend:
        Overrides for the matching ``.options`` keys.
    reduce, mor_order:
        Certified model-order reduction: override ``.options reduce=``
        / ``.options mor_order=`` (session methods and ensembles only;
        see :mod:`repro.engine.reduction`).
    memory, memory_rtol:
        Fractional-memory compression: override ``.options memory=`` /
        ``.options memory_rtol=`` (session methods and the
        ``'grunwald-letnikov'`` baseline; see
        :mod:`repro.fractional.soe`).
    sparse, use_ic:
        Forwarded to :func:`build_system`.
    ensemble:
        Optional per-deck corner sweep / Monte-Carlo specification: a
        JSON-style dict (see
        :meth:`repro.engine.executor.Ensemble.from_spec`) or a ready
        :class:`~repro.engine.executor.Ensemble`.  The members are
        solved on the deck's transient grid across ``jobs`` workers
        (``parallel`` backend) and returned as
        :attr:`NetlistRun.ensemble`.
    jobs, parallel:
        Worker count and executor backend.  Besides sharding ensembles,
        ``jobs > 1`` lets a deck whose circuit graph has several
        connected components solve each component as an independent
        sub-pencil in parallel (plain ``opm`` transient, no reduction,
        exact memory) -- bit-identical to the serial monolithic solve
        and re-stitched into one result in monolithic state order.

    Examples
    --------
    >>> run = simulate_netlist('''
    ... V1 in 0 DC 0 AC 1 SIN(0 1 100)
    ... R1 in out 1k
    ... C1 out 0 1u
    ... .tran 100u 10m
    ... .ac dec 2 10 10k
    ... ''')
    >>> run.tran is not None and run.ac is not None
    True
    >>> run.outputs
    ('in', 'out')
    """
    netlist = _as_netlist(source, title)
    spec = netlist.analysis
    output_names = tuple(outputs) if outputs is not None else tuple(netlist.nodes)
    system = build_system(netlist, outputs=output_names, sparse=sparse, use_ic=use_ic)

    from ..core.dispatch import FRACTIONAL_ZOO_METHODS, SIMULATION_METHODS

    method = method if method is not None else (spec.method or "opm")
    method = validate_method_name(
        method, SIMULATION_METHODS, context="method", error=NetlistError
    )
    basis = basis if basis is not None else spec.basis
    backend = backend if backend is not None else (spec.backend or "auto")
    reduce = combine_reduce_options(
        reduce if reduce is not None else spec.reduce,
        mor_order if mor_order is not None else spec.mor_order,
    )
    memory = memory if memory is not None else (spec.memory or "exact")
    if memory_rtol is None and not _memory_is_exact(memory):
        # the deck's memory_rtol= card only applies when compression is
        # actually on (the caller may have overridden memory='exact')
        memory_rtol = spec.memory_rtol
    windows = int(windows) if windows is not None else (spec.windows or 1)
    if windows < 1:
        raise NetlistError(f"windows must be >= 1, got {windows}")
    if method not in _SESSION_METHODS and windows > 1:
        raise NetlistError(
            f"method {method!r} only supports a plain transient: windowed "
            "marching is an engine-session feature; drop the method or the "
            "windows setting"
        )

    tran = None
    if spec.tran is not None or t_end is not None:
        horizon = float(t_end) if t_end is not None else spec.tran.tstop
        m = int(steps) if steps is not None else (
            spec.m or (spec.tran.steps if spec.tran is not None else None)
        )
        if m is None:
            raise NetlistError(
                "transient requested without a term count: add a .tran card "
                "or pass steps="
            )
        u = netlist.input_function()
        if method not in _SESSION_METHODS:
            from ..core.dispatch import simulate

            method_kwargs: dict[str, object] = {}
            if method == "grunwald-letnikov":
                # The GL baseline is the only non-session method with a
                # history tail to compress.
                method_kwargs["memory"] = memory
                method_kwargs["memory_rtol"] = memory_rtol
            elif method in FRACTIONAL_ZOO_METHODS:
                # zoo methods run on a Simulator inside dispatch: give
                # them the session backend the deck/caller picked
                method_kwargs["backend"] = backend
            tran = simulate(
                system, u, horizon, m, method=method, basis=basis,
                **method_kwargs,
            )
        elif windows > 1 or method == "opm-windowed":
            if m % windows:
                raise NetlistError(
                    f"steps={m} must be divisible by windows={windows}"
                )
            sim = Simulator(
                system, (horizon / windows, m // windows),
                basis=basis, backend=backend, reduce=reduce,
                memory=memory, memory_rtol=memory_rtol,
            )
            tran = sim.march(u, horizon)
        else:
            graph = CircuitGraph(netlist)
            if (
                jobs is not None
                and jobs > 1
                and reduce is None  # ROM bases differ per block: stay monolithic
                and _memory_is_exact(memory)
                and graph.n_components > 1
                and not graph.orphan_elements
            ):
                tran = _solve_split_components(
                    netlist, graph, system,
                    horizon=horizon, m=m, basis=basis, backend=backend,
                    memory=memory, memory_rtol=memory_rtol,
                    sparse=sparse, use_ic=use_ic,
                    jobs=jobs, parallel=parallel,
                )
            else:
                sim = Simulator(
                    system, (horizon, m), basis=basis, backend=backend,
                    reduce=reduce, memory=memory, memory_rtol=memory_rtol,
                )
                tran = sim.run(u)

    ensemble_result = None
    if ensemble is not None:
        from .executor import Ensemble, ParallelExecutor

        if spec.tran is None and t_end is None:
            raise NetlistError(
                "an ensemble needs a transient grid: add a .tran card or "
                "pass t_end="
            )
        if not isinstance(ensemble, Ensemble):
            ensemble = Ensemble.from_spec(netlist, ensemble, outputs=output_names)
        horizon = float(t_end) if t_end is not None else spec.tran.tstop
        m = int(steps) if steps is not None else (
            spec.m or (spec.tran.steps if spec.tran is not None else None)
        )
        executor = ParallelExecutor(parallel, jobs=jobs)
        ensemble_result = executor.run(
            ensemble, (horizon, m), basis=basis, solver_backend=backend,
            reduce=reduce, memory=memory, memory_rtol=memory_rtol,
        )

    ac = None
    if spec.ac is not None:
        ac = ac_scan(netlist, system=system, card=spec.ac, outputs=output_names)

    return NetlistRun(
        netlist=netlist,
        system=system,
        outputs=output_names,
        tran=tran,
        ac=ac,
        ensemble=ensemble_result,
    )

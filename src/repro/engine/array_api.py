"""Array-API-standard namespace plumbing for the batched kernels.

The OPM column sweep is a GEMM-shaped loop: per column one multi-RHS
substitution plus a rank-``j`` history combination.  Those primitives
exist verbatim in every array library implementing the `array API
standard <https://data-apis.org/array-api/latest/>`_, so the engine's
dense pencil path can run on an accelerator simply by swapping the
array namespace -- no custom kernels.  This module is the seam:

* :func:`resolve_namespace` maps a backend name (``'numpy'``,
  ``'cupy'``, ``'torch'``) to its namespace module, with a clean
  :class:`~repro.errors.SolverError` when the library is not
  installed (optional accelerators are never hard dependencies);
* :func:`env_backend` reads the opt-in ``REPRO_ARRAY_BACKEND``
  environment variable consulted by
  :func:`repro.engine.backends.select_backend` under ``mode='auto'``;
* :func:`to_host` brings any backend's array back to a host
  ``numpy.ndarray`` (result containers and certification always run
  on the host).

NumPy >= 2.0 implements the standard in its main namespace, so
``'numpy'`` is always available and doubles as the contract-test
backend for the device code path on machines without a GPU.
"""

from __future__ import annotations

import importlib
import os
from typing import Any

import numpy as np

from ..errors import SolverError

__all__ = [
    "KNOWN_ARRAY_BACKENDS",
    "ARRAY_BACKEND_ENV",
    "resolve_namespace",
    "env_backend",
    "to_host",
]

#: Array-API namespaces the engine knows how to drive.
KNOWN_ARRAY_BACKENDS = ("numpy", "cupy", "torch")

#: Environment variable selecting an array backend under ``mode='auto'``.
ARRAY_BACKEND_ENV = "REPRO_ARRAY_BACKEND"


def resolve_namespace(name: str) -> tuple[Any, str]:
    """Resolve a backend name to ``(namespace_module, canonical_name)``.

    Raises
    ------
    SolverError
        For unknown names, or known backends whose library is not
        installed (the message says which and how to get it).
    """
    canonical = str(name).strip().lower()
    if canonical.startswith("array-api:"):
        canonical = canonical[len("array-api:") :]
    if canonical not in KNOWN_ARRAY_BACKENDS:
        raise SolverError(
            f"unknown array backend {name!r}; choose from "
            f"{KNOWN_ARRAY_BACKENDS}"
        )
    if canonical == "numpy":
        return np, "numpy"
    try:
        module = importlib.import_module(canonical)
    except ImportError as exc:
        raise SolverError(
            f"array backend {canonical!r} requested but the {canonical} "
            f"library is not installed in this environment; install it or "
            f"use one of the built-in backends ('auto'/'dense'/'sparse')"
        ) from exc
    return module, canonical


def env_backend() -> str | None:
    """The ``REPRO_ARRAY_BACKEND`` opt-in, normalised (``None`` if unset).

    Empty values and the explicit disables (``off``/``none``) read as
    unset, so wrapper scripts can force the default path.
    """
    value = os.environ.get(ARRAY_BACKEND_ENV, "").strip().lower()
    if value in ("", "off", "none", "0", "false"):
        return None
    return value


def to_host(array) -> np.ndarray:
    """Any backend's array as a host ``numpy.ndarray``.

    CuPy arrays transfer through ``.get()``; torch tensors detach and
    move to CPU first; host arrays pass through ``np.asarray`` (no
    copy).
    """
    if isinstance(array, np.ndarray):
        return array
    get = getattr(array, "get", None)  # cupy device -> host
    if callable(get):
        return np.asarray(get())
    detach = getattr(array, "detach", None)  # torch autograd leaf
    if callable(detach):
        return np.asarray(detach().cpu().numpy())
    return np.asarray(array)

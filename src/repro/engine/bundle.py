"""Basis-generic operator plans: the :class:`OperatorBundle` layer.

The paper's algorithm is defined over *any* orthogonal-function
operational matrix, but the engine built in earlier iterations was
hardwired to block pulses.  This module is the seam that removes that
assumption: an :class:`OperatorBundle` wraps one
:class:`~repro.basis.base.BasisSet` together with

* its *solver route* (:attr:`OperatorBundle.kind`):

  - ``'block-pulse'`` -- the paper's triangular Toeplitz / adaptive
    sweeps (:class:`~repro.basis.block_pulse.BlockPulseBasis`);
  - ``'pwconst'`` -- Walsh/Haar families, solved in block-pulse
    coordinates through the exact change of basis and transformed at
    the session boundary;
  - ``'toeplitz'`` -- the Laguerre functions, whose Tustin-form
    operational matrices are upper Toeplitz, so the very same column
    sweep applies with different coefficients;
  - ``'spectral'`` -- polynomial bases (Chebyshev, Legendre, and any
    user-defined :class:`BasisSet`), solved in the integral
    formulation with one cached Kronecker factorisation per session;

* cached access to the operational matrices it needs (delegating to
  the per-instance caches installed by
  :func:`~repro.basis.base.cached_operator`);
* the *history matrices* of hybrid-function marching: for a spectral
  window basis, ``history_matrix(alpha, lag)`` is the operational
  matrix mapping a past window's coefficients to the
  Riemann-Liouville memory it exerts ``lag`` windows later -- the
  construction of Damarla & Kundu's orthogonal hybrid functions;
* a content-based :meth:`OperatorBundle.fingerprint` identifying the
  basis (equal bases fingerprint equal, regardless of instance), for
  callers who key external caches -- shared bundles, memoised session
  factories -- by basis identity.

:func:`resolve_basis` maps user-facing specifications -- a family name
such as ``"chebyshev"`` or a ready-made :class:`BasisSet` instance --
to a basis bound to the session grid, with typo suggestions.
"""

from __future__ import annotations

import difflib

import numpy as np
from scipy.special import gamma as gamma_fn

from ..basis import (
    BasisSet,
    BlockPulseBasis,
    ChebyshevBasis,
    HaarBasis,
    LaguerreBasis,
    LegendreBasis,
    TimeGrid,
    WalshBasis,
)
from ..basis.pwconst import PiecewiseConstantBasis
from ..errors import BasisError
from . import assembly

__all__ = [
    "BASIS_FAMILIES",
    "OperatorBundle",
    "basis_names",
    "resolve_basis",
    "validate_basis_name",
]


def _make_block_pulse(grid: TimeGrid, projection: str) -> BasisSet:
    return BlockPulseBasis(grid, projection=projection)


def _make_pwconst(cls):
    def make(grid: TimeGrid, projection: str) -> BasisSet:
        if not grid.is_uniform:
            raise BasisError(
                f"{cls.__name__} requires a uniform grid (its transform acts "
                "on equal block pulses); use basis='block-pulse' for adaptive grids"
            )
        return cls(grid.t_end, grid.m, projection=projection)

    return make


def _make_spectral(cls):
    def make(grid: TimeGrid, projection: str) -> BasisSet:
        if not grid.is_uniform:
            raise BasisError(
                f"{cls.__name__} is grid-free (only the span and the number "
                "of coefficients are used) and cannot honour adaptive "
                "spacing; pass a uniform grid or a (t_end, m) tuple"
            )
        return cls(grid.t_end, grid.m)

    return make


def _make_laguerre(grid: TimeGrid, projection: str) -> BasisSet:
    raise BasisError(
        "the Laguerre family needs an explicit time scale: pass a "
        "LaguerreBasis(a, m) instance instead of the name 'laguerre' "
        "(choose a of the order of the dominant system pole)"
    )


#: Registered basis families: name -> factory(grid, projection).
BASIS_FAMILIES = {
    "block-pulse": _make_block_pulse,
    "bpf": _make_block_pulse,
    "walsh": _make_pwconst(WalshBasis),
    "haar": _make_pwconst(HaarBasis),
    "legendre": _make_spectral(LegendreBasis),
    "chebyshev": _make_spectral(ChebyshevBasis),
    "laguerre": _make_laguerre,
}


def basis_names() -> tuple:
    """Sorted names accepted by ``basis=`` throughout the engine/CLI."""
    return tuple(sorted(BASIS_FAMILIES))


def validate_basis_name(name: str) -> str:
    """Normalise a basis family name, raising with suggestions on typos."""
    key = str(name).strip().lower().replace("_", "-").replace(" ", "-")
    if key in BASIS_FAMILIES:
        return key
    close = difflib.get_close_matches(key, BASIS_FAMILIES, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    raise BasisError(
        f"unknown basis {name!r}{hint}; choose from {basis_names()} "
        "or pass a BasisSet instance"
    )


def resolve_basis(spec, grid: TimeGrid | None = None, *, projection: str = "average") -> BasisSet:
    """Resolve a basis specification to a :class:`BasisSet`.

    Parameters
    ----------
    spec:
        ``None`` (block pulse, the paper's default), a family name from
        :func:`basis_names`, or a ready-made :class:`BasisSet` instance
        (returned unchanged).
    grid:
        The session grid the named family is bound to (required for
        names, ignored for instances).
    projection:
        Block-pulse projection rule, forwarded to the family factory.
    """
    if isinstance(spec, BasisSet):
        return spec
    if spec is None:
        spec = "block-pulse"
    if not isinstance(spec, str):
        raise TypeError(
            f"basis must be a family name or a BasisSet instance, "
            f"got {type(spec).__name__}"
        )
    key = validate_basis_name(spec)
    if grid is None:
        raise BasisError(f"a grid is required to build the {key!r} basis by name")
    return BASIS_FAMILIES[key](grid, projection)


class OperatorBundle:
    """One basis plus everything the engine caches about it.

    Thin, stateless-looking wrapper: the heavy objects (operational
    matrices, history matrices) are memoised either on the basis
    instance (via :func:`~repro.basis.base.cached_operator`) or on the
    bundle itself, so repeated ``run``/``sweep``/``march`` calls on a
    warm session rebuild nothing.
    """

    def __init__(self, basis: BasisSet) -> None:
        if not isinstance(basis, BasisSet):
            raise TypeError(f"basis must be a BasisSet, got {type(basis).__name__}")
        self.basis = basis
        if isinstance(basis, BlockPulseBasis):
            self.kind = "block-pulse"
        elif isinstance(basis, PiecewiseConstantBasis):
            self.kind = "pwconst"
        elif isinstance(basis, LaguerreBasis):
            self.kind = "toeplitz"
        else:
            self.kind = "spectral"
        self._cache: dict = {}

    # ------------------------------------------------------------------
    # identification
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.basis.size

    @property
    def t_end(self) -> float:
        return self.basis.t_end

    @property
    def name(self) -> str:
        return self.basis.name

    @property
    def grid(self) -> TimeGrid | None:
        """The underlying :class:`TimeGrid` for grid-based kinds, else ``None``."""
        if self.kind == "block-pulse":
            return self.basis.grid
        if self.kind == "pwconst":
            return self.basis.block_pulse.grid
        return None

    @property
    def solver_bundle(self) -> "OperatorBundle":
        """The bundle the column sweep actually runs in.

        Walsh/Haar sessions solve in block-pulse coordinates (the exact
        change of basis preserves triangularity); every other kind
        solves in its own basis.
        """
        if self.kind == "pwconst":
            inner = self._cache.get("solver_bundle")
            if inner is None:
                inner = OperatorBundle(self.basis.block_pulse)
                self._cache["solver_bundle"] = inner
            return inner
        return self

    @property
    def transform(self) -> np.ndarray | None:
        """Change-of-basis matrix ``W`` for ``pwconst`` kinds, else ``None``."""
        if self.kind == "pwconst":
            return self.basis.transform
        return None

    @property
    def supports_march(self) -> bool:
        """Whether windowed marching is defined for this family.

        Laguerre functions live on ``[0, inf)`` -- there is no finite
        window to tile -- so only finite-horizon families march.
        """
        return np.isfinite(self.t_end)

    def fingerprint(self) -> tuple:
        """Content-based identity of the basis for cache keying.

        Covers everything that changes projection or operator content:
        family, size, span, projection rule (block-pulse-backed
        families), and quadrature order (spectral families).
        """
        basis = self.basis
        if self.kind == "block-pulse":
            return (
                "block-pulse",
                basis.size,
                basis.grid.edges.tobytes(),
                basis.projection,
            )
        if self.kind == "pwconst":
            return (basis.name, basis.size, basis.t_end, basis.projection)
        if self.kind == "toeplitz":
            return ("laguerre", basis.size, basis.a)
        return (
            type(basis).__module__,
            type(basis).__qualname__,
            basis.size,
            basis.t_end,
            getattr(basis, "_n_quad", None),
        )

    # ------------------------------------------------------------------
    # operational matrices
    # ------------------------------------------------------------------
    def integration_matrix(self) -> np.ndarray:
        """Operational matrix of integration (cached on the basis)."""
        return self.basis.integration_matrix()

    def fractional_integration_matrix(self, alpha: float) -> np.ndarray:
        """Fractional integration matrix ``I^alpha`` (cached on the basis).

        ``alpha = 1`` routes to the classical integration matrix so the
        spectral plan has one uniform entry point for every order.
        """
        if alpha == 1.0:
            return self.basis.integration_matrix()
        return self.basis.fractional_integration_matrix(alpha)

    def toeplitz_coefficients(self, alpha: float) -> np.ndarray:
        """First-row coefficients of the upper-Toeplitz ``D^alpha``.

        Only defined for the Toeplitz solver routes: uniform block-pulse
        grids (paper eq. (22), shared process-wide memo) and Laguerre
        functions (exact Tustin series with ``2/h -> a``).
        """
        if self.kind == "block-pulse":
            grid = self.basis.grid
            if not grid.is_uniform:
                raise BasisError(
                    "Toeplitz coefficients require a uniform block-pulse grid"
                )
            return assembly.toeplitz_coefficients(alpha, grid.m, grid.h)
        if self.kind == "toeplitz":
            # the basis owns (and caches) its Tustin coefficient formula
            return self.basis.fractional_differentiation_coefficients(alpha)
        raise BasisError(
            f"{self.name} has no Toeplitz differentiation coefficients; "
            "it is solved in the integral formulation"
        )

    def ones_coefficients(self) -> np.ndarray:
        """Coefficients of the constant function ``1`` in this basis.

        Block pulses (and their Walsh/Haar transforms handled through
        the block-pulse solver bundle) represent constants exactly as
        the all-ones vector; other families project once and cache.
        """
        ones = self._cache.get("ones")
        if ones is None:
            if self.kind == "block-pulse":
                ones = np.ones(self.size)
            else:
                ones = self.basis.project(lambda t: np.ones_like(t))
            ones.setflags(write=False)
            self._cache["ones"] = ones
        return ones

    def terminal_vector(self) -> np.ndarray:
        """Synthesis weights for the right-edge value ``f(t_end)``.

        ``coeffs @ terminal_vector()`` evaluates the expansion at the
        window end -- exact for polynomial bases, used by classical
        hybrid marching to carry the state across windows.
        """
        vec = self._cache.get("terminal")
        if vec is None:
            vec = self.basis.evaluate(np.array([self.t_end]))[:, 0].copy()
            vec.setflags(write=False)
            self._cache["terminal"] = vec
        return vec

    # ------------------------------------------------------------------
    # hybrid-function marching: fractional history matrices
    # ------------------------------------------------------------------
    def history_matrix(self, alpha: float, lag: int) -> np.ndarray:
        """Memory operator of a past window at distance ``lag`` windows.

        Row ``i`` holds this basis' coefficients of the function

        .. math::

            h_i(\\tau) = \\frac{1}{\\Gamma(\\alpha)} \\int_0^W
                (\\mathrm{lag}\\cdot W + \\tau - \\sigma)^{\\alpha-1}
                \\psi_i(\\sigma)\\, d\\sigma,

        i.e. the Riemann-Liouville ``I^alpha`` memory that window
        ``k - lag`` (expanded in ``psi``) exerts on window ``k`` at
        local time ``tau``.  With these matrices the fractional memory
        tail of hybrid-function marching is a handful of GEMMs per
        window: ``tail_k = sum_l (A Z_{k-l} + R_{k-l}) H_l``.

        Computed by quadrature at the basis' own projection nodes --
        plain Gauss-Legendre for ``lag >= 2`` (smooth kernel), a
        dyadically graded composite rule for ``lag == 1`` (the kernel
        steepens like ``tau^(alpha-1)`` toward the shared boundary) --
        then projected with :meth:`project_values`.  Cached per
        ``(alpha, lag)``.
        """
        if lag < 1:
            raise BasisError(f"history lag must be >= 1, got {lag}")
        key = ("history", float(alpha), int(lag))
        H = self._cache.get(key)
        if H is not None:
            return H
        basis = self.basis
        if not hasattr(basis, "quadrature_times") or not hasattr(basis, "project_values"):
            raise BasisError(
                f"{self.name} does not expose quadrature_times/project_values; "
                "fractional hybrid marching needs both"
            )
        W = self.t_end
        tau = np.asarray(basis.quadrature_times, dtype=float)
        m = self.size
        if lag >= 2:
            # smooth kernel: composite Gauss-Legendre in sigma
            ng = max(64, 2 * m)
            nodes, weights = np.polynomial.legendre.leggauss(ng)
            sigma = 0.5 * W * (nodes + 1.0)
            ws = 0.5 * W * weights
            psi = basis.evaluate(sigma)  # (m, ng)
            kernel = (lag * W + tau[:, None] - sigma[None, :]) ** (alpha - 1.0)
            vals = psi @ (kernel * ws[None, :]).T  # (m, nq)
        else:
            # adjacent window: integrate in u = W + tau - sigma over
            # [tau, W + tau] with dyadic panels graded toward u = tau,
            # where u^(alpha-1) varies fastest.  Basis functions are
            # only ever evaluated inside [0, W].
            gl_nodes, gl_weights = np.polynomial.legendre.leggauss(16)
            vals = np.empty((m, tau.size))
            for q, t_q in enumerate(tau):
                panels = []
                top = W + float(t_q)
                # custom bases may place a quadrature node at tau = 0
                # (Lobatto-style); the integrand mass below top*1e-15
                # is O((top*1e-15)^alpha) -- negligible -- and a strictly
                # positive start keeps the dyadic refinement finite
                a = max(float(t_q), top * 1e-15)
                while a < top:
                    b = min(2.0 * a, top)
                    panels.append((a, b))
                    a = b
                u_nodes = np.concatenate(
                    [0.5 * (b - a) * (gl_nodes + 1.0) + a for a, b in panels]
                )
                u_weights = np.concatenate(
                    [0.5 * (b - a) * gl_weights for a, b in panels]
                )
                sigma = W + float(t_q) - u_nodes  # inside [0, W]
                psi = basis.evaluate(sigma)  # (m, nodes)
                vals[:, q] = psi @ (u_weights * u_nodes ** (alpha - 1.0))
        vals = vals / gamma_fn(alpha)
        H = np.asarray(basis.project_values(vals), dtype=float)
        H.setflags(write=False)
        self._cache[key] = H
        return H

    def __repr__(self) -> str:
        return f"OperatorBundle({self.basis!r}, kind={self.kind!r})"

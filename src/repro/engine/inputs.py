"""Input normalisation and basis projection (paper eq. (11)).

Users hand solvers an input ``u`` in one of three forms -- a callable,
a coefficient array, or a scalar -- and callables themselves come in
several return-shape dialects (scalar broadcast, ``(nt,)``, ``(1, nt)``,
``(p, nt)``).  This module is the single place those dialects are
reconciled:

* :func:`normalise_input_callable` wraps any accepted callable into the
  canonical ``u(times) -> (n_inputs, len(times))`` form by inspecting
  the shape of what it *returns* -- the callable is never probed at
  ``t = 0`` (or anywhere else outside the projection quadrature), so
  waveforms undefined at isolated points work as long as the quadrature
  nodes avoid them;
* :func:`project_input` maps any accepted input form to the coefficient
  matrix ``U`` of shape ``(n_inputs, m)``.

Every solver and the :class:`~repro.engine.session.Simulator` session
route through these two helpers, so all entry points accept exactly the
same input dialects.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..basis.base import BasisSet
from ..basis.block_pulse import BlockPulseBasis
from ..errors import ModelError

__all__ = ["normalise_input_callable", "project_input"]


def normalise_input_callable(u: Callable, n_inputs: int) -> Callable:
    """Wrap ``u`` so it always returns a ``(n_inputs, len(times))`` array.

    Accepted return shapes of the original callable, for ``times`` of
    length ``nt``:

    * a scalar (``0-d``) -- broadcast to every channel and time;
    * ``(nt,)`` -- one waveform, broadcast to every channel;
    * ``(1, nt)`` -- likewise;
    * ``(n_inputs, nt)`` -- taken as-is.

    Anything else raises :class:`~repro.errors.ModelError` *at
    evaluation time* (with the offending shape in the message), so the
    callable is never probed speculatively.
    """
    if not callable(u):
        raise TypeError(f"u must be callable, got {type(u).__name__}")

    def wrapped(times, _u=u, _p=n_inputs):
        t = np.atleast_1d(np.asarray(times, dtype=float))
        values = np.asarray(_u(t), dtype=float)
        if values.ndim == 0:
            return np.full((_p, t.size), float(values))
        if values.ndim == 1:
            if values.size != t.size:
                raise ModelError(
                    f"input callable returned {values.size} values for "
                    f"{t.size} times"
                )
            return np.broadcast_to(values, (_p, t.size))
        if values.ndim == 2:
            if values.shape == (_p, t.size):
                return values
            if values.shape == (1, t.size):
                return np.broadcast_to(values, (_p, t.size))
            raise ModelError(
                f"input callable must return ({_p}, {t.size}) values, "
                f"got shape {values.shape}"
            )
        raise ModelError(
            f"input callable returned a {values.ndim}-D array; expected "
            f"scalar, 1-D, or 2-D"
        )

    return wrapped


def project_input(u, basis: BasisSet, n_inputs: int) -> np.ndarray:
    """Project an input specification onto the basis (paper eq. (11)).

    Accepted forms:

    * a callable ``u(times)`` in any dialect understood by
      :func:`normalise_input_callable`, projected with the basis'
      quadrature rule;
    * an array of coefficients with shape ``(p, m)`` (or ``(m,)`` for
      ``p = 1``), taken as-is;
    * a scalar, meaning a constant (step) input on every channel.

    Returns the coefficient matrix ``U`` of shape ``(p, m)``.
    """
    m = basis.size
    if callable(u):
        return basis.project_vector(normalise_input_callable(u, n_inputs), n_inputs)
    if np.isscalar(u):
        # constants project exactly in every basis here; block pulses and
        # Walsh/Haar in particular represent them without quadrature noise
        value = float(u)
        if isinstance(basis, BlockPulseBasis):
            return np.full((n_inputs, m), value)
        const = basis.project(lambda t: np.full_like(t, value, dtype=float))
        return np.tile(const, (n_inputs, 1))
    u_arr = np.asarray(u, dtype=float)
    if u_arr.ndim == 1:
        if n_inputs != 1:
            raise ModelError(
                f"1-D input coefficients require a single-input system, got p={n_inputs}"
            )
        u_arr = u_arr.reshape(1, -1)
    if u_arr.shape != (n_inputs, m):
        raise ModelError(
            f"input coefficients must have shape ({n_inputs}, {m}), got {u_arr.shape}"
        )
    return u_arr

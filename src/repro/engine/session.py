"""Cached simulation sessions (the engine's public entry point).

The paper's core cost claim is that OPM is "roughly one
transient-analysis sweep": one pencil factorisation reused by every
column.  A :class:`Simulator` session extends that reuse across *calls*
-- it binds a system + grid + basis once and caches everything that
does not depend on the input:

* the block-pulse basis and grid bookkeeping,
* the fractional differentiation coefficients (uniform grids) or the
  full upper-triangular operator (adaptive grids),
* the backend choice (dense LAPACK vs ``scipy.sparse`` SuperLU, picked
  from system sparsity by
  :func:`~repro.engine.backends.select_backend`),
* the pencil LU factorisations themselves (in a shared
  :class:`~repro.engine.backends.PencilBank`).

``sim.run(u)`` on a warm session therefore performs only the input
projection and the triangular column sweep.  ``sim.sweep(inputs)``
goes further and solves many inputs in one batched multi-RHS sweep --
one ``lu_solve`` per column for *all* right-hand sides -- returning a
:class:`~repro.engine.sweep.SweepResult`.

The one-shot solvers (:func:`repro.core.simulate_opm`,
:func:`repro.core.simulate_multiterm`) are thin wrappers that build a
throwaway session; repeated-solve workloads (parameter sweeps, many
input waveforms, frequency scans) should hold on to a session instead.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Union

import numpy as np
import scipy.sparse as sp

from ..basis.block_pulse import BlockPulseBasis
from ..basis.grid import TimeGrid
from ..core.lti import DescriptorSystem, MultiTermSystem
from ..core.result import MarchingResult, SimulationResult
from ..errors import SolverError
from . import assembly, kernels, marching
from .backends import PencilBank, select_backend
from .inputs import project_input
from .sweep import SweepResult

__all__ = ["Simulator", "resolve_grid", "InputLike"]

InputLike = Union[Callable, np.ndarray, list, tuple, float, int]


def resolve_grid(grid) -> TimeGrid:
    """Accept a :class:`TimeGrid` or an ``(t_end, m)`` convenience tuple."""
    if isinstance(grid, TimeGrid):
        return grid
    if isinstance(grid, tuple) and len(grid) == 2:
        return TimeGrid.uniform(float(grid[0]), int(grid[1]))
    raise TypeError(
        "grid must be a TimeGrid or a (t_end, m) tuple, "
        f"got {type(grid).__name__}"
    )


class _DescriptorPlan:
    """Input-independent solve state for (fractional) descriptor systems."""

    def __init__(
        self,
        system: DescriptorSystem,
        grid: TimeGrid,
        adaptive_method: str,
        history: str,
        backend: str,
    ) -> None:
        if history not in ("direct", "fft"):
            raise SolverError(f"history must be 'direct' or 'fft', got {history!r}")
        self.system = system
        self.history = history
        alpha = system.alpha
        if grid.is_uniform:
            self.coeffs = assembly.toeplitz_coefficients(alpha, grid.m, grid.h)
            self.D = None
            self.first_order = alpha == 1.0
            if self.first_order:
                self.method = "opm-alternating"
            else:
                self.method = "opm-toeplitz" if history == "direct" else "opm-toeplitz-fft"
        else:
            self.coeffs = None
            self.first_order = False
            self.D = assembly.adaptive_operator(
                grid, alpha, adaptive_method=adaptive_method
            )
            self.method = "opm-general"
        self.backend_mode = backend
        self.bank = PencilBank(select_backend(system.E, system.A, mode=backend))
        self._offset = system.shifted_input_offset()

    def right_hand_side(self, U: np.ndarray) -> np.ndarray:
        """``R = B U`` plus the constant zero-IC shift ``A x0`` (if any).

        ``U`` is ``(p, m)`` for one input or ``(k, p, m)`` batched; the
        result is ``(n, m)`` or ``(n, m, k)`` accordingly.
        """
        B = self.system.B
        if U.ndim == 2:
            R = B @ U
            if self._offset is not None:
                R = R + self._offset[:, None]
            return R
        R = np.einsum("np,kpm->nmk", B, U)
        if self._offset is not None:
            R = R + self._offset[:, None, None]
        return R

    def solve(self, R: np.ndarray) -> np.ndarray:
        """Column sweep for one (``(n, m)``) or many (``(n, m, k)``) inputs."""
        if self.D is not None:
            X = kernels.sweep_general(self.bank, R, self.D)
        else:
            X = kernels.sweep_toeplitz(
                self.bank,
                R,
                self.coeffs,
                alternating_tail=self.first_order,
                history=self.history,
            )
        x0 = self.system.x0
        if x0 is not None:
            X = X + (x0[:, None] if X.ndim == 2 else x0[:, None, None])
        return X

    def info(self) -> dict:
        """Solver metadata for result containers."""
        return {
            "method": self.method,
            "alpha": self.system.alpha,
            "factorisations": self.bank.factorisations,
            "backend": self.bank.backend.name,
        }


class _MultiTermPlan:
    """Input-independent solve state for multi-term systems."""

    def __init__(self, system: MultiTermSystem, grid: TimeGrid, backend: str) -> None:
        if not grid.is_uniform:
            raise SolverError(
                "multi-term OPM requires a uniform grid; convert to first order "
                "for adaptive stepping"
            )
        self.system = system
        m, h = grid.m, grid.h
        self.h = h
        term_coeffs = [
            (alpha_k, matrix, assembly.toeplitz_coefficients(alpha_k, m, h))
            for alpha_k, matrix in system.terms
        ]
        # Pencil sum P = sum_k c0^{(k)} M_k, factorised once (as 1*P - 0).
        pencil = None
        for _, matrix, coeffs in term_coeffs:
            contrib = coeffs[0] * matrix
            pencil = contrib if pencil is None else pencil + contrib
        zero = (
            sp.csr_matrix(pencil.shape)
            if sp.issparse(pencil)
            else np.zeros(pencil.shape)
        )
        self.bank = PencilBank(select_backend(pencil, zero, mode=backend))
        # Integer orders 1 and 2 admit O(n)-per-column tail recurrences
        # (see kernels.sweep_multiterm); other positive orders pay the
        # O(n j) dot product.
        self.first_terms = []
        self.second_terms = []
        self.slow_terms = []
        for alpha_k, matrix, coeffs in term_coeffs:
            if alpha_k == 0.0:
                continue  # algebraic: no history tail
            if alpha_k == 1.0:
                self.first_terms.append(matrix)
            elif alpha_k == 2.0:
                self.second_terms.append(matrix)
            else:
                self.slow_terms.append((matrix, coeffs))
        self.method = "opm-multiterm"

    def right_hand_side(self, U: np.ndarray) -> np.ndarray:
        """``R = B U`` (zero initial conditions by the multi-term convention)."""
        if U.ndim == 2:
            return self.system.B @ U
        return np.einsum("np,kpm->nmk", self.system.B, U)

    def solve(self, R: np.ndarray) -> np.ndarray:
        """Multi-term column sweep for one or many inputs."""
        return kernels.sweep_multiterm(
            self.bank, R, self.first_terms, self.second_terms, self.slow_terms, self.h
        )

    def info(self) -> dict:
        """Solver metadata for result containers."""
        return {
            "method": self.method,
            "orders": [alpha_k for alpha_k, _ in self.system.terms],
            "factorisations": self.bank.factorisations,
            "backend": self.bank.backend.name,
        }


class Simulator:
    """Reusable simulation session: system + grid bound once, solved many times.

    Parameters
    ----------
    system:
        :class:`~repro.core.lti.DescriptorSystem`,
        :class:`~repro.core.lti.FractionalDescriptorSystem`, or
        :class:`~repro.core.lti.MultiTermSystem` /
        :class:`~repro.core.lti.SecondOrderSystem`.
    grid:
        :class:`~repro.basis.grid.TimeGrid` or ``(t_end, m)`` tuple.
        Multi-term systems require a uniform grid.
    projection:
        Input projection rule, ``'average'`` (paper eq. (2)) or
        ``'midpoint'``.
    adaptive_method:
        Fractional matrix-power construction on adaptive grids
        (``'auto'``/``'eig'``/``'schur'``).
    history:
        Fractional-tail accumulation on uniform grids, ``'direct'`` or
        ``'fft'`` (ignored on the first-order fast path).
    backend:
        ``'auto'`` (default; sparse backend for large sparse systems,
        dense otherwise), ``'dense'``, or ``'sparse'``.

    Examples
    --------
    Amortise one factorisation over many inputs:

    >>> import numpy as np
    >>> from repro.core import DescriptorSystem
    >>> sim = Simulator(DescriptorSystem([[1.0]], [[-1.0]], [[1.0]]), (5.0, 100))
    >>> r1 = sim.run(1.0)                       # cold: factorises
    >>> r2 = sim.run(lambda t: np.sin(t))       # warm: sweep only
    >>> sim.factorisations
    1
    >>> batch = sim.sweep([0.5, 1.0, 2.0])      # one multi-RHS sweep
    >>> batch.n_runs
    3
    """

    def __init__(
        self,
        system,
        grid,
        *,
        projection: str = "average",
        adaptive_method: str = "auto",
        history: str = "direct",
        backend: str = "auto",
    ) -> None:
        grid = resolve_grid(grid)
        if isinstance(system, MultiTermSystem):
            self._plan = _MultiTermPlan(system, grid, backend)
        elif isinstance(system, DescriptorSystem):
            self._plan = _DescriptorPlan(
                system, grid, adaptive_method, history, backend
            )
        else:
            raise TypeError(
                "system must be a DescriptorSystem, FractionalDescriptorSystem "
                f"or MultiTermSystem, got {type(system).__name__}"
            )
        self._system = system
        self._basis = BlockPulseBasis(grid, projection=projection)
        self._runs = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def system(self):
        """The bound system model."""
        return self._system

    @property
    def grid(self) -> TimeGrid:
        """The bound time grid."""
        return self._basis.grid

    @property
    def basis(self) -> BlockPulseBasis:
        """The cached block-pulse basis."""
        return self._basis

    @property
    def backend(self) -> str:
        """Name of the selected linear-algebra backend (``'dense'``/``'sparse'``)."""
        return self._plan.bank.backend.name

    @property
    def factorisations(self) -> int:
        """Distinct pencil factorisations performed so far (cached forever)."""
        return self._plan.bank.factorisations

    @property
    def is_warm(self) -> bool:
        """True once the pencil factorisation cache is populated."""
        return self._plan.bank.is_warm

    @property
    def runs(self) -> int:
        """Number of :meth:`run` / :meth:`sweep` calls served so far."""
        return self._runs

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def project(self, u: InputLike) -> np.ndarray:
        """Project one input specification onto the session basis: ``(p, m)``."""
        return project_input(u, self._basis, self._system.n_inputs)

    def run(self, u: InputLike) -> SimulationResult:
        """Simulate one input; warm sessions pay only projection + sweep.

        Returns a :class:`~repro.core.result.SimulationResult` whose
        ``info`` records the method, factorisation count, backend, and
        whether the pencil cache was already warm.
        """
        warm = self.is_warm
        start = time.perf_counter()
        U = self.project(u)
        R = self._plan.right_hand_side(U)
        X = self._plan.solve(R)
        wall = time.perf_counter() - start
        self._runs += 1
        info = self._plan.info()
        info["warm"] = warm
        return SimulationResult(
            self._basis, X, self._system, U, wall_time=wall, info=info
        )

    def sweep(self, inputs: Iterable[InputLike]) -> SweepResult:
        """Simulate many inputs in one batched multi-RHS column sweep.

        All inputs are projected, stacked, and solved together: every
        column step performs a single multi-RHS substitution for the
        whole batch (one ``lu_solve`` per column for *all* inputs),
        instead of ``k`` separate sweeps.

        Parameters
        ----------
        inputs:
            Iterable of input specifications (each anything
            :meth:`run` accepts).

        Returns
        -------
        SweepResult
            Stacked results; index it for per-input
            :class:`~repro.core.result.SimulationResult` objects.
        """
        inputs = list(inputs)
        if not inputs:
            raise SolverError("sweep requires at least one input")
        warm = self.is_warm
        start = time.perf_counter()
        U = np.stack([self.project(u) for u in inputs])  # (k, p, m)
        R = self._plan.right_hand_side(U)  # (n, m, k)
        X = self._plan.solve(R)  # (n, m, k)
        wall = time.perf_counter() - start
        self._runs += 1
        info = self._plan.info()
        info["warm"] = warm
        info["batch"] = len(inputs)
        return SweepResult(
            self._basis,
            np.moveaxis(X, 2, 0),
            self._system,
            U,
            wall_time=wall,
            info=info,
        )

    def march(self, u, t_end: float, *, events=()) -> MarchingResult:
        """Windowed time-marching over ``[0, t_end]`` on this session.

        The session's grid *is* the window: ``[0, t_end]`` is split into
        ``t_end / grid.t_end`` consecutive windows of ``grid.m`` block
        pulses each, all solved on the session's cached pencil bank
        (one factorisation per circuit configuration for the entire
        march).  State is carried across window boundaries -- the
        flux/charge vector ``E x`` for classical systems, the full
        GL/OPM memory tail for fractional ones -- so the stitched
        trajectory matches a single-window solve of the whole horizon
        to machine precision, while the per-window working set stays
        ``O(n m + m^2)`` instead of growing with the horizon.

        Parameters
        ----------
        u:
            Input over the whole horizon: a callable in global time, a
            scalar, a ``(p, K * m)`` coefficient array, or an iterable
            streaming one chunk per window (each chunk anything
            :meth:`run` accepts, in window-local time).
        t_end:
            Horizon; must be a whole multiple of the session window
            ``grid.t_end``.
        events:
            :class:`~repro.engine.marching.Event` objects applied at
            window boundaries: input swaps, load-step scalings, and
            pencil re-stamps (switch closures).  Re-stamped pencils are
            cached, so revisiting a configuration re-factorises
            nothing.

        Returns
        -------
        MarchingResult
            Stitched per-window results with global-time sampling.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.core import DescriptorSystem
        >>> sim = Simulator(DescriptorSystem([[1.0]], [[-1.0]], [[1.0]]), (1.0, 50))
        >>> long = sim.march(1.0, 10.0)        # 10 windows, one factorisation
        >>> long.n_windows, sim.factorisations
        (10, 1)
        >>> bool(abs(long.states([9.9])[0, 0] - 1.0) < 1e-3)
        True
        """
        return marching.march(self, u, t_end, events=events)

"""Cached simulation sessions (the engine's public entry point).

The paper's core cost claim is that OPM is "roughly one
transient-analysis sweep": one pencil factorisation reused by every
column.  A :class:`Simulator` session extends that reuse across *calls*
-- it binds a system + grid + basis once and caches everything that
does not depend on the input:

* the basis and its operational matrices (block pulse by default; any
  family from :mod:`repro.basis` via ``basis=`` -- see
  :mod:`repro.engine.bundle`),
* the fractional differentiation coefficients (uniform grids) or the
  full upper-triangular operator (adaptive grids), or -- for spectral
  bases -- the Kronecker integral-form operator,
* the backend choice (dense LAPACK vs ``scipy.sparse`` SuperLU, picked
  from system sparsity by
  :func:`~repro.engine.backends.select_backend`),
* the pencil LU factorisations themselves (in a shared
  :class:`~repro.engine.backends.PencilBank`).

``sim.run(u)`` on a warm session therefore performs only the input
projection and the triangular column sweep (or one cached Kronecker
substitution for spectral bases).  ``sim.sweep(inputs)`` goes further
and solves many inputs in one batched multi-RHS sweep -- one
``lu_solve`` per column for *all* right-hand sides -- returning a
:class:`~repro.engine.sweep.SweepResult`.

The one-shot solvers (:func:`repro.core.simulate_opm`,
:func:`repro.core.simulate_multiterm`) are thin wrappers that build a
throwaway session; repeated-solve workloads (parameter sweeps, many
input waveforms, frequency scans) should hold on to a session instead.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Union

import numpy as np
import scipy.sparse as sp

from ..basis.base import BasisSet
from ..basis.grid import TimeGrid
from ..core.lti import DescriptorSystem, MultiTermSystem
from ..core.result import MarchingResult, SimulationResult
from ..errors import SolverError
from ..fractional.methods import resolve_method
from ..fractional.soe import resolve_memory
from . import assembly, kernels, marching
from .array_api import KNOWN_ARRAY_BACKENDS
from .backends import PencilBank, pencil_fingerprint, select_backend
from .bundle import OperatorBundle, resolve_basis
from .inputs import project_input
from .reduction import MOR_RESIDUAL_MARGIN, bind_reduction, equation_residual
from .sweep import SweepResult

__all__ = ["Simulator", "resolve_grid", "InputLike"]

InputLike = Union[Callable, np.ndarray, list, tuple, float, int]

#: Refuse dense Kronecker operators (spectral plans) larger than this
#: (rows); the sparse backend has no such limit.
MAX_DENSE_KRON = 20_000

#: Below this many inputs a ``sweep(jobs=...)`` call stays serial: one
#: batched multi-RHS sweep already amortises the factorisation, and the
#: per-worker session rebuild would cost more than it saves.
PARALLEL_SWEEP_MIN_COLUMNS = 16


def resolve_grid(grid) -> TimeGrid:
    """Accept a :class:`TimeGrid` or an ``(t_end, m)`` convenience tuple."""
    if isinstance(grid, TimeGrid):
        return grid
    if isinstance(grid, tuple) and len(grid) == 2:
        return TimeGrid.uniform(float(grid[0]), int(grid[1]))
    raise TypeError(
        "grid must be a TimeGrid or a (t_end, m) tuple, "
        f"got {type(grid).__name__}"
    )


def _resolve_session_basis(grid, basis, projection: str | None) -> BasisSet:
    """Resolve the (grid, basis) constructor arguments to one basis.

    Accepted combinations:

    * ``grid`` a :class:`TimeGrid` / ``(t_end, m)`` tuple and ``basis``
      ``None`` or a family name -- the named family is built on the
      grid (block pulse by default);
    * ``grid`` a :class:`TimeGrid` / tuple and ``basis`` a ready
      :class:`BasisSet` -- checked for compatibility;
    * ``grid`` itself a :class:`BasisSet` (e.g. a
      ``LaguerreBasis(a, m)``, whose horizon is not a grid).

    An explicitly requested ``projection`` rule is honoured for
    block-pulse-backed instances through ``with_projection``; ``None``
    keeps the instance's own rule (``'average'`` for named families).
    """
    basis_obj = None
    if isinstance(grid, BasisSet):
        if basis is not None:
            raise TypeError(
                "pass the basis either positionally (in place of the grid) "
                "or via basis=, not both"
            )
        basis_obj = grid
    elif isinstance(basis, BasisSet):
        if grid is not None:
            g = resolve_grid(grid)
            mismatch = basis.size != g.m or (
                np.isfinite(basis.t_end)
                and abs(basis.t_end - g.t_end) > 1e-9 * max(g.t_end, 1.0)
            )
            # a block-pulse basis owns its grid outright: every edge must
            # agree, not just the span (an adaptive grid argument must
            # not be silently replaced by the basis' uniform one)
            if not mismatch and hasattr(basis, "grid"):
                mismatch = basis.grid != g
            elif not mismatch and not g.is_uniform:
                raise SolverError(
                    f"the {basis.name} basis cannot honour the adaptive "
                    f"spacing of {g!r} (only its span and size are used); "
                    "pass a uniform grid or omit the grid"
                )
            if mismatch:
                raise SolverError(
                    f"basis {basis!r} does not match the grid {g!r}; "
                    "omit the grid when passing a basis instance"
                )
        basis_obj = basis
    if basis_obj is not None:
        if projection is not None and hasattr(basis_obj, "with_projection"):
            basis_obj = basis_obj.with_projection(projection)
        return basis_obj
    if grid is None:
        raise TypeError("a grid (or a BasisSet instance) is required")
    g = resolve_grid(grid)
    return resolve_basis(basis, g, projection=projection or "average")


def _host_backend_mode(mode: str, plan: str) -> str:
    """Validate a backend mode for the host-only solve plans.

    The spectral Kronecker and multi-term operators must never be
    densified into a device namespace (a ``(n m)^2`` Kronecker operator
    on a GPU is exactly the thing the triangular structure avoids), so
    those plans accept only the classic modes.
    """
    if mode in KNOWN_ARRAY_BACKENDS or str(mode).startswith("array-api"):
        raise SolverError(
            f"{plan} plans are host-only; array-API backend {mode!r} is "
            "not supported on this solve route -- use backend='auto', "
            "'dense', or 'sparse'"
        )
    return mode


def _offset_columns(vector, ones: np.ndarray) -> np.ndarray | None:
    """Per-column coefficients of the constant vector function ``vector``."""
    if vector is None:
        return None
    return np.outer(np.asarray(vector, dtype=float).reshape(-1), ones)


def _add_columns(X: np.ndarray, cols: np.ndarray | None) -> np.ndarray:
    """Add constant-column coefficients to ``(n, m)`` or ``(n, m, k)``."""
    if cols is None:
        return X
    if X.ndim == 2:
        return X + cols
    return X + cols[:, :, None]


def _system_rhs(system, U: np.ndarray, offset_cols: np.ndarray | None) -> np.ndarray:
    """``R = B U`` plus the constant zero-IC shift columns (if any).

    ``U`` is ``(p, m)`` for one input or ``(k, p, m)`` batched; the
    result is ``(n, m)`` or ``(n, m, k)`` accordingly.  Shared by every
    descriptor-system plan.
    """
    B = system.B
    if U.ndim == 2:
        R = B @ U
    else:
        k, p, m = U.shape
        # one GEMM on the flattened batch ((p, k*m) columns), then
        # restore the (n, m, k) layout
        flat = B @ U.transpose(1, 2, 0).reshape(p, m * k)
        R = np.asarray(flat).reshape(-1, m, k)
    return _add_columns(R, offset_cols)


class _DescriptorPlan:
    """Input-independent solve state for (fractional) descriptor systems.

    Covers the triangular solver routes: block-pulse grids (Toeplitz on
    uniform grids, general upper-triangular on adaptive grids) and
    Laguerre functions (exact Tustin Toeplitz coefficients).
    """

    kind = "descriptor"

    def __init__(
        self,
        system: DescriptorSystem,
        bundle: OperatorBundle,
        adaptive_method: str,
        history: str,
        backend: str,
    ) -> None:
        if history not in ("direct", "fft"):
            raise SolverError(f"history must be 'direct' or 'fft', got {history!r}")
        self.system = system
        self.bundle = bundle
        self.history = history
        alpha = system.alpha
        grid = bundle.grid
        if grid is not None and not grid.is_uniform:
            self.coeffs = None
            self.first_order = False
            self.D = assembly.adaptive_operator(
                grid, alpha, adaptive_method=adaptive_method
            )
            self.method = "opm-general"
        else:
            self.coeffs = bundle.toeplitz_coefficients(alpha)
            self.D = None
            # the O(n)-per-column alternating recurrence is the
            # block-pulse first-order coefficient pattern; Laguerre
            # coefficients do not alternate
            self.first_order = alpha == 1.0 and bundle.kind == "block-pulse"
            if self.first_order:
                self.method = "opm-alternating"
            elif bundle.kind == "toeplitz":
                self.method = "opm-toeplitz[laguerre]"
            else:
                self.method = "opm-toeplitz" if history == "direct" else "opm-toeplitz-fft"
        self.backend_mode = backend
        self.bank = PencilBank(select_backend(system.E, system.A, mode=backend))
        ones = bundle.ones_coefficients()
        self._offset = system.shifted_input_offset()
        self._offset_cols = _offset_columns(self._offset, ones)
        self._x0_cols = _offset_columns(system.x0, ones)

    def right_hand_side(self, U: np.ndarray) -> np.ndarray:
        """``R = B U`` plus the constant zero-IC shift ``A x0`` (if any)."""
        return _system_rhs(self.system, U, self._offset_cols)

    def solve(self, R: np.ndarray) -> np.ndarray:
        """Column sweep for one (``(n, m)``) or many (``(n, m, k)``) inputs.

        Non-host (array-API device) backends stage the right-hand-side
        block into their namespace once, sweep there, and transfer the
        solution back -- two transfers per call, amortised over all
        ``m`` columns.
        """
        backend = self.bank.backend
        host = getattr(backend, "is_host", True)
        if not host:
            R = backend.prepare_rhs(R)
        if self.D is not None:
            X = kernels.sweep_general(self.bank, R, self.D)
        else:
            X = kernels.sweep_toeplitz(
                self.bank,
                R,
                self.coeffs,
                alternating_tail=self.first_order,
                history=self.history,
            )
        if not host:
            X = backend.to_host(X)
        return _add_columns(X, self._x0_cols)

    def info(self) -> dict:
        """Solver metadata for result containers."""
        return {
            "method": self.method,
            "alpha": self.system.alpha,
            "factorisations": self.bank.factorisations,
            "backend": self.bank.backend.name,
        }


class _MultiTermPlan:
    """Input-independent solve state for multi-term systems."""

    kind = "multiterm"

    def __init__(
        self, system: MultiTermSystem, bundle: OperatorBundle, backend: str
    ) -> None:
        grid = bundle.grid
        if grid is None or not grid.is_uniform:
            raise SolverError(
                "multi-term OPM requires a uniform grid; convert to first order "
                "for adaptive stepping"
            )
        self.system = system
        self.bundle = bundle
        m, h = grid.m, grid.h
        self.h = h
        term_coeffs = [
            (alpha_k, matrix, assembly.toeplitz_coefficients(alpha_k, m, h))
            for alpha_k, matrix in system.terms
        ]
        # Pencil sum P = sum_k c0^{(k)} M_k, factorised once (as 1*P - 0).
        pencil = None
        for _, matrix, coeffs in term_coeffs:
            contrib = coeffs[0] * matrix
            pencil = contrib if pencil is None else pencil + contrib
        zero = (
            sp.csr_matrix(pencil.shape)
            if sp.issparse(pencil)
            else np.zeros(pencil.shape)
        )
        self.bank = PencilBank(
            select_backend(
                pencil,
                zero,
                mode=_host_backend_mode(backend, "multi-term"),
                allow_env=False,
            )
        )
        # Integer orders 1 and 2 admit O(n)-per-column tail recurrences
        # (see kernels.sweep_multiterm); other positive orders pay the
        # O(n j) dot product.
        self.first_terms = []
        self.second_terms = []
        self.slow_terms = []
        for alpha_k, matrix, coeffs in term_coeffs:
            if alpha_k == 0.0:
                continue  # algebraic: no history tail
            if alpha_k == 1.0:
                self.first_terms.append(matrix)
            elif alpha_k == 2.0:
                self.second_terms.append(matrix)
            else:
                self.slow_terms.append((matrix, coeffs))
        self.method = "opm-multiterm"

    def right_hand_side(self, U: np.ndarray) -> np.ndarray:
        """``R = B U`` (zero initial conditions by the multi-term convention)."""
        if U.ndim == 2:
            return self.system.B @ U
        return np.einsum("np,kpm->nmk", self.system.B, U)

    def solve(self, R: np.ndarray) -> np.ndarray:
        """Multi-term column sweep for one or many inputs."""
        return kernels.sweep_multiterm(
            self.bank, R, self.first_terms, self.second_terms, self.slow_terms, self.h
        )

    def info(self) -> dict:
        """Solver metadata for result containers."""
        return {
            "method": self.method,
            "orders": [alpha_k for alpha_k, _ in self.system.terms],
            "factorisations": self.bank.factorisations,
            "backend": self.bank.backend.name,
        }


class _SpectralPlan:
    """Input-independent integral-form solve state for spectral bases.

    Polynomial bases have no (invertible) differentiation operational
    matrix, so the session solves the classical integral formulation

    .. math::  E Z = A Z F + R F, \\qquad X = Z + x_0 \\mathbf{1}^T,

    with ``F`` the (fractional) integration matrix and ``Z`` the
    coefficients of the zero-IC shifted state.  ``F`` is not
    triangular, so the equation is solved through its Kronecker form
    ``(I_m (x) E - F^T (x) A) vec(Z) = vec(R F)`` -- the operator is
    input-independent, so one factorisation (cached in a
    :class:`PencilBank` at shift 1) serves every ``run``/``sweep``/
    ``march`` call, exactly like the triangular plans.  Spectral ``m``
    is small by construction (that is the point of the basis), so the
    Kronecker system stays modest; sparse systems stay sparse through
    ``scipy.sparse.kron``.
    """

    kind = "spectral"

    def __init__(
        self, system: DescriptorSystem, bundle: OperatorBundle, backend: str
    ) -> None:
        if not isinstance(system, DescriptorSystem):
            raise SolverError(
                "spectral bases support (fractional) descriptor systems only; "
                "convert multi-term models with to_first_order() or use a "
                "piecewise-constant basis"
            )
        self.system = system
        self.bundle = bundle
        alpha = system.alpha
        self.F = np.asarray(bundle.fractional_integration_matrix(alpha), dtype=float)
        self.backend_mode = backend
        self.bank = PencilBank(self.kron_backend(system))
        self.method = f"opm-spectral[{bundle.name}]"
        ones = bundle.ones_coefficients()
        self._offset = system.shifted_input_offset()
        self._offset_cols = _offset_columns(self._offset, ones)
        self._x0_cols = _offset_columns(system.x0, ones)

    def kron_backend(self, system: DescriptorSystem):
        """Backend over the Kronecker operator of ``system`` (cached LUs
        live in the plan's :class:`PencilBank`; marching events restamp
        through this hook)."""
        m = self.bundle.size
        E_big = sp.kron(sp.identity(m, format="csr"), sp.csr_matrix(system.E))
        A_big = sp.kron(sp.csr_matrix(self.F.T), sp.csr_matrix(system.A))
        mode = _host_backend_mode(self.backend_mode, "spectral integral-form")
        if E_big.shape[0] > MAX_DENSE_KRON:
            # decide BEFORE any densification: an (n m)^2 dense operator
            # this large must never be materialised
            if mode == "dense":
                raise SolverError(
                    f"dense spectral Kronecker operator of size {E_big.shape[0]} "
                    f"exceeds {MAX_DENSE_KRON}; use backend='sparse' or a "
                    "smaller spectral order m"
                )
            mode = "sparse"
        return select_backend(E_big, A_big, mode=mode, allow_env=False)

    def right_hand_side(self, U: np.ndarray) -> np.ndarray:
        """``R = B U`` plus the constant zero-IC shift ``A x0`` (if any)."""
        return _system_rhs(self.system, U, self._offset_cols)

    def apply_F(self, R: np.ndarray) -> np.ndarray:
        """Coefficients of ``I^alpha r`` for ``(n, m)`` or ``(n, m, k)``."""
        if R.ndim == 2:
            return R @ self.F
        return np.einsum("nmk,mj->njk", R, self.F)

    def kron_solve(self, S: np.ndarray) -> np.ndarray:
        """Solve ``E Z - A Z F = S`` through the cached Kronecker LU."""
        squeeze = S.ndim == 2
        S3 = S[:, :, None] if squeeze else S
        n, m, k = S3.shape
        rhs = S3.transpose(1, 0, 2).reshape(m * n, k)
        out = self.bank.solve(1.0, rhs)
        Z = out.reshape(m, n, k).transpose(1, 0, 2)
        return Z[:, :, 0] if squeeze else Z

    def solve(self, R: np.ndarray) -> np.ndarray:
        """Integral-form solve for one (``(n, m)``) or many inputs."""
        X = self.kron_solve(self.apply_F(R))
        return _add_columns(X, self._x0_cols)

    def info(self) -> dict:
        """Solver metadata for result containers."""
        return {
            "method": self.method,
            "alpha": self.system.alpha,
            "factorisations": self.bank.factorisations,
            "backend": self.bank.backend.name,
        }


class _MethodPlan(_SpectralPlan):
    """Input-independent solve state for a zoo method (``method=``).

    A :class:`~repro.fractional.methods.FractionalMethod` supplies the
    coefficient-space operator ``F`` of ``I^alpha``; the session solves
    the same integral formulation as :class:`_SpectralPlan`,

    .. math::  E Z = A Z F + R F, \\qquad X = Z + x_0 \\mathbf{1}^T,

    through the cached-pencil machinery the native route uses: when
    ``F`` is upper triangular with a nonzero diagonal (the Toeplitz
    convolution methods -- GL, Oustaloup), a triangular column sweep
    with one ``(E - F[j,j] A)`` factorisation per distinct diagonal
    entry (one total for Toeplitz ``F``); otherwise (the spectral
    collocation methods) the inherited Kronecker integral-form solve.
    """

    kind = "method"

    def __init__(
        self,
        system: DescriptorSystem,
        bundle: OperatorBundle,
        backend: str,
        method,
    ) -> None:
        if not isinstance(system, DescriptorSystem):
            raise SolverError(
                f"method={method.name!r} supports (fractional) descriptor "
                "systems only; convert multi-term models with "
                "to_first_order() first"
            )
        self.system = system
        self.bundle = bundle
        self.zoo_method = method
        F = np.asarray(
            method.integration_operator(bundle, system.alpha), dtype=float
        )
        m = bundle.size
        if F.shape != (m, m):
            raise SolverError(
                f"method {method.name!r} built a {F.shape} operator for a "
                f"size-{m} basis"
            )
        self.F = F
        self.backend_mode = backend
        scale = max(float(np.abs(F).max()), 1.0)
        lower = F[np.tril_indices(m, -1)]
        self._triangular = bool(
            (not lower.size or np.max(np.abs(lower)) <= 1e-12 * scale)
            and np.min(np.abs(np.diag(F))) > 1e-14 * scale
        )
        if self._triangular:
            mode = _host_backend_mode(backend, f"method {method.name!r}")
            self.bank = PencilBank(
                select_backend(system.E, system.A, mode=mode, allow_env=False)
            )
        else:
            self.bank = PencilBank(self.kron_backend(system))
        self.method = f"{method.name}[{bundle.name}]"
        ones = bundle.ones_coefficients()
        self._offset = system.shifted_input_offset()
        self._offset_cols = _offset_columns(self._offset, ones)
        self._x0_cols = _offset_columns(system.x0, ones)

    def solve(self, R: np.ndarray) -> np.ndarray:
        """Integral-form solve for one (``(n, m)``) or many inputs."""
        S = self.apply_F(R)
        Z = self._sweep_triangular(S) if self._triangular else self.kron_solve(S)
        return _add_columns(Z, self._x0_cols)

    def _sweep_triangular(self, S: np.ndarray) -> np.ndarray:
        """Column sweep of ``E Z = A Z F + S`` for upper-triangular ``F``.

        Column ``j`` satisfies ``(E - F[j,j] A) Z_j = A sum_{i<j}
        F[i,j] Z_i + S_j``, solved as ``bank.solve(1/F[j,j], .../F[j,j])``
        so Toeplitz operators reuse one cached factorisation throughout.
        """
        squeeze = S.ndim == 2
        S3 = S[:, :, None] if squeeze else S
        n, m, k = S3.shape
        A, F = self.system.A, self.F
        Z = np.empty((n, m, k))
        for j in range(m):
            f = float(F[j, j])
            rhs = S3[:, j, :]
            if j:
                hist = np.tensordot(Z[:, :j, :], F[:j, j], axes=([1], [0]))
                rhs = rhs + A @ hist
            Z[:, j, :] = self.bank.solve(1.0 / f, rhs / f)
        return Z[:, :, 0] if squeeze else Z

    def info(self) -> dict:
        """Solver metadata for result containers."""
        info = super().info()
        info["triangular_sweep"] = self._triangular
        return info


class Simulator:
    """Reusable simulation session: system + grid + basis bound once.

    Parameters
    ----------
    system:
        :class:`~repro.core.lti.DescriptorSystem`,
        :class:`~repro.core.lti.FractionalDescriptorSystem`, or
        :class:`~repro.core.lti.MultiTermSystem` /
        :class:`~repro.core.lti.SecondOrderSystem`.
    grid:
        :class:`~repro.basis.grid.TimeGrid`, ``(t_end, m)`` tuple, or a
        ready :class:`~repro.basis.base.BasisSet` instance (e.g. a
        ``LaguerreBasis``).  Multi-term systems require a uniform grid.
    basis:
        Basis family the session solves in: ``None`` (block pulse, the
        paper's default), a name from
        :func:`repro.engine.bundle.basis_names` (``'chebyshev'``,
        ``'legendre'``, ``'haar'``, ...), or a :class:`BasisSet`
        instance.  Walsh/Haar sessions solve in block-pulse coordinates
        through the exact change of basis; polynomial bases use the
        cached integral-form Kronecker operator; all families share the
        same warm-cache semantics.
    projection:
        Block-pulse input projection rule, ``'average'`` (paper
        eq. (2)) or ``'midpoint'``.  ``None`` (default) keeps the
        basis' own rule; an explicit value is honoured for
        block-pulse-backed bases (including Walsh/Haar instances) and
        ignored by spectral/Laguerre families, which project with
        their own quadrature.
    adaptive_method:
        Fractional matrix-power construction on adaptive grids
        (``'auto'``/``'eig'``/``'schur'``).
    history:
        Fractional-tail accumulation on uniform grids, ``'direct'`` or
        ``'fft'`` (ignored on the first-order fast path).
    backend:
        ``'auto'`` (default; sparse backend for large sparse systems,
        dense otherwise), ``'dense'``, or ``'sparse'``.
    method:
        Fractional-operator discretisation: ``None`` / ``'opm'`` (the
        paper's native operational-matrix route, default), a name from
        :func:`repro.fractional.methods.method_names` (``'gl'``,
        ``'oustaloup'``, ``'jacobi'``), or a ready
        :class:`~repro.fractional.methods.FractionalMethod` instance
        for custom parameterisations.  Zoo methods solve the same
        integral formulation through the same cached-pencil machinery
        (warm sessions, batched sweeps, the service cache); ``march``,
        ``run_ensemble``, ``reduce=`` and compressed ``memory=`` stay
        native-route features.  ``'jacobi'`` binds the Legendre basis
        by default; typos fail with a did-you-mean suggestion.
    memory:
        Cross-window fractional memory on :meth:`march`: ``'exact'``
        (default; bit-identical to the full-history tail), ``'soe'``,
        or an :class:`~repro.fractional.soe.SoePlan`.  Compressed
        memory replaces the quadratic cross-window history GEMMs by a
        certified sum-of-exponentials mode recurrence (linear-time long
        marches); the fitted bound is checked against the plan's
        ``rtol`` at march bind and an uncertified fit falls back to
        exact memory, recorded in the result's ``info['memory']``.
    memory_rtol:
        Certification tolerance override for ``memory='soe'``
        (default ``repro.fractional.soe.DEFAULT_MEMORY_RTOL``).

    Examples
    --------
    Amortise one factorisation over many inputs:

    >>> import numpy as np
    >>> from repro.core import DescriptorSystem
    >>> sim = Simulator(DescriptorSystem([[1.0]], [[-1.0]], [[1.0]]), (5.0, 100))
    >>> r1 = sim.run(1.0)                       # cold: factorises
    >>> r2 = sim.run(lambda t: np.sin(t))       # warm: sweep only
    >>> sim.factorisations
    1
    >>> batch = sim.sweep([0.5, 1.0, 2.0])      # one multi-RHS sweep
    >>> batch.n_runs
    3

    A spectral session needs far fewer coefficients on smooth problems:

    >>> spec = Simulator(DescriptorSystem([[1.0]], [[-1.0]], [[1.0]]),
    ...                  (5.0, 24), basis="chebyshev")
    >>> res = spec.run(1.0)
    >>> bool(abs(res.states([3.0])[0, 0] - (1 - np.exp(-3.0))) < 1e-10)
    True
    """

    def __init__(
        self,
        system,
        grid=None,
        *,
        basis=None,
        projection: str | None = None,
        adaptive_method: str = "auto",
        history: str = "direct",
        backend: str = "auto",
        method=None,
        reduce=None,
        memory="exact",
        memory_rtol: float | None = None,
    ) -> None:
        # resolve method= first: it may bind the default basis family
        # (e.g. 'jacobi' sessions default to Legendre), and a typo must
        # fail with the did-you-mean diagnostic before anything is built
        self._method = resolve_method(method)
        if (
            self._method is not None
            and basis is None
            and not isinstance(grid, BasisSet)
        ):
            basis = self._method.default_basis
        basis_obj = _resolve_session_basis(grid, basis, projection)
        bundle = OperatorBundle(basis_obj)
        solver = bundle.solver_bundle
        self._system = system
        self._bundle = bundle
        self._basis = basis_obj
        self._solve_basis = solver.basis
        self._transform = bundle.transform
        self._adaptive_method = adaptive_method
        self._history = history
        self._backend_mode = backend
        # validated at bind: a typo'd memory mode must fail here, not
        # deep inside the first march
        self._memory_plan = resolve_memory(memory, memory_rtol)
        if self._method is not None:
            if reduce is not None:
                raise SolverError(
                    f"reduce= is not supported with method="
                    f"{self._method.name!r}; reduced-order plans are "
                    "certified on the native OPM route only"
                )
            if self._memory_plan is not None:
                raise SolverError(
                    "memory compression applies to native marches only; "
                    f"method={self._method.name!r} sessions use exact memory"
                )
        self._default_input: InputLike | None = None
        self._runs = 0
        # one session = one solve at a time: run/sweep/march serialise
        # here, so threads (and the serve daemon's worker pool) can
        # share a warm session without interleaving plan/bank state.
        # Reentrant because march() drives run() internally.
        self._lock = threading.RLock()

        self._reduction = None
        self._mor_info: dict = {}
        self._mor_rtol: float | None = None
        self._mor_residual_scale = 0.0
        self._full_plan = None
        self._full_offset_cols = None
        self._x0_lift_cols = None
        if reduce is not None:
            model, mor_info = bind_reduction(
                system, reduce, t_end=basis_obj.t_end, m=basis_obj.size
            )
            self._mor_info = mor_info
            if model is not None:
                self._reduction = model
                self._mor_rtol = mor_info["rtol"]
                ones = solver.ones_coefficients()
                self._full_offset_cols = _offset_columns(
                    system.shifted_input_offset(), ones
                )
                self._x0_lift_cols = _offset_columns(system.x0, ones)
        self._plan = self._make_plan(
            system if self._reduction is None else self._reduction.solve_system
        )
        if self._reduction is not None:
            self._mor_residual_scale = self._calibrate_run_residual()
            self._mor_info["residual_scale"] = self._mor_residual_scale
        # what a ParallelExecutor needs to rebuild this session in a
        # worker (projection is already baked into the basis instance);
        # reduce= stays parent-side: the executor reduces per
        # fingerprint group and ships only the small reduced pencils
        self._executor_options = {
            "adaptive_method": adaptive_method,
            "history": history,
            "solver_backend": backend,
            "reduce": reduce,
            "memory": memory,
            "memory_rtol": memory_rtol,
        }

    def _make_plan(self, system):
        """Build the input-independent solve plan for ``system`` on the
        session's bundle (also used for the lazy full-model fallback of
        reduced sessions)."""
        solver = self._bundle.solver_bundle
        if self._method is not None:
            # zoo methods solve the integral form through _MethodPlan
            # (which validates the system kind and the bundle route)
            return _MethodPlan(system, solver, self._backend_mode, self._method)
        if isinstance(system, MultiTermSystem):
            if solver.kind != "block-pulse":
                raise SolverError(
                    "multi-term systems require a piecewise-constant basis "
                    "(block-pulse, walsh, haar); convert to first order with "
                    "to_first_order() to use a spectral basis"
                )
            return _MultiTermPlan(system, solver, self._backend_mode)
        if isinstance(system, DescriptorSystem):
            if solver.kind in ("block-pulse", "toeplitz"):
                return _DescriptorPlan(
                    system,
                    solver,
                    self._adaptive_method,
                    self._history,
                    self._backend_mode,
                )
            return _SpectralPlan(system, solver, self._backend_mode)
        raise TypeError(
            "system must be a DescriptorSystem, FractionalDescriptorSystem "
            f"or MultiTermSystem, got {type(system).__name__}"
        )

    @classmethod
    def from_netlist(cls, netlist, grid=None, **kwargs) -> "Simulator":
        """Session straight from a netlist / SPICE deck.

        The deck's ``.tran`` card supplies the grid, ``.options`` the
        basis/backend, ``.ic`` the initial state, and the parsed source
        waveforms are bound as the default input, so ``sim.run()``
        needs no arguments.  See
        :func:`repro.engine.netlist_session.from_netlist` for the full
        parameter list.

        Examples
        --------
        >>> sim = Simulator.from_netlist('''
        ... I1 0 n1 1m
        ... R1 n1 0 1k
        ... C1 n1 0 1u
        ... .tran 50u 5m
        ... ''')
        >>> bool(abs(sim.run().states([5e-3])[0, 0] - 1.0) < 1e-2)
        True
        """
        from .netlist_session import from_netlist

        return from_netlist(netlist, grid, **kwargs)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def system(self):
        """The bound system model."""
        return self._system

    @property
    def grid(self) -> TimeGrid | None:
        """The bound time grid (``None`` for grid-free bases)."""
        return self._bundle.grid

    @property
    def basis(self) -> BasisSet:
        """The session basis (results are expressed in it)."""
        return self._basis

    @property
    def bundle(self) -> OperatorBundle:
        """The session's cached operator bundle."""
        return self._bundle

    @property
    def backend(self) -> str:
        """Name of the selected linear-algebra backend (``'dense'``/``'sparse'``)."""
        return self._plan.bank.backend.name

    @property
    def factorisations(self) -> int:
        """Distinct pencil factorisations performed so far (cached forever)."""
        return self._plan.bank.factorisations

    @property
    def is_warm(self) -> bool:
        """True once the pencil factorisation cache is populated."""
        return self._plan.bank.is_warm

    @property
    def runs(self) -> int:
        """Number of :meth:`run` / :meth:`sweep` calls served so far."""
        return self._runs

    @property
    def bank(self) -> PencilBank:
        """The session's pencil factorisation cache."""
        return self._plan.bank

    @property
    def method(self):
        """The bound :class:`~repro.fractional.methods.FractionalMethod`
        (``None``: the native operational-matrix route)."""
        return self._method

    @property
    def memory_plan(self):
        """The bound :class:`~repro.fractional.soe.SoePlan` governing
        fractional march memory (``None``: exact memory)."""
        return self._memory_plan

    @property
    def fingerprint(self) -> tuple:
        """Content key identifying this session's solve configuration.

        Two sessions fingerprint equal exactly when they perform the
        same arithmetic: equal system content (pencil, input matrix,
        initial state, fractional order / term structure), equal basis
        (via :meth:`OperatorBundle.fingerprint
        <repro.engine.bundle.OperatorBundle.fingerprint>`), and equal
        solve settings.  The ``serve`` daemon keys its cross-request
        session cache -- and therefore its request coalescing -- on
        this value.
        """
        system = self._system
        # the output map changes what a run returns, so sessions with
        # different C/D must never unify in a fingerprint-keyed cache
        C = getattr(system, "C", None)
        D = getattr(system, "D", None)
        output_key = (
            None if C is None else pencil_fingerprint(C),
            None if D is None else pencil_fingerprint(D),
        )
        if isinstance(system, MultiTermSystem):
            system_key: tuple = (
                "multiterm",
                tuple(
                    (float(alpha_k), pencil_fingerprint(matrix))
                    for alpha_k, matrix in system.terms
                ),
                pencil_fingerprint(system.B),
                output_key,
            )
        else:
            system_key = (
                type(system).__name__,
                float(getattr(system, "alpha", 1.0)),
                pencil_fingerprint(system.E, system.A),
                pencil_fingerprint(system.B),
                None if system.x0 is None else system.x0.tobytes(),
                output_key,
            )
        return (
            system_key,
            self._bundle.fingerprint(),
            self._adaptive_method,
            self._history,
            self._backend_mode,
            # memory compression changes march arithmetic, so compressed
            # and exact sessions must never unify in a keyed cache
            ("exact",)
            if self._memory_plan is None
            else self._memory_plan.fingerprint(),
            # a zoo method changes the fractional operator itself --
            # differently parameterised methods must never unify either
            ("method", "native")
            if self._method is None
            else ("method", *self._method.fingerprint()),
        )

    def limit_cache(
        self, *, max_entries: int | None = None, max_bytes: int | None = None
    ) -> "Simulator":
        """Bound the session's pencil cache (see :meth:`PencilBank.limit
        <repro.engine.backends.PencilBank.limit>`).  Returns ``self``."""
        self._plan.bank.limit(max_entries=max_entries, max_bytes=max_bytes)
        if self._full_plan is not None:
            self._full_plan.bank.limit(
                max_entries=max_entries, max_bytes=max_bytes
            )
        return self

    # ------------------------------------------------------------------
    # default input
    # ------------------------------------------------------------------
    def bind_input(self, u: InputLike) -> "Simulator":
        """Attach a default input, used when :meth:`run` / :meth:`march`
        receive ``u=None`` (netlist sessions bind the deck's source
        waveforms here).  Returns ``self`` for chaining."""
        self._default_input = u
        return self

    @property
    def bound_input(self) -> InputLike | None:
        """The default input attached with :meth:`bind_input` (or ``None``)."""
        return self._default_input

    def _resolve_input(self, u: InputLike | None) -> InputLike:
        if u is not None:
            return u
        if self._default_input is None:
            raise SolverError(
                "no input given and none bound to the session; pass u or "
                "bind_input() first"
            )
        return self._default_input

    # ------------------------------------------------------------------
    # basis plumbing
    # ------------------------------------------------------------------
    def project(self, u: InputLike) -> np.ndarray:
        """Project one input specification onto the session basis: ``(p, m)``."""
        return project_input(u, self._basis, self._system.n_inputs)

    def _encode_inputs(self, U: np.ndarray) -> np.ndarray:
        """Session-basis coefficients -> solver-basis coefficients."""
        if self._transform is None:
            return U
        return U @ self._transform

    def _decode_states(self, X: np.ndarray) -> np.ndarray:
        """Solver-basis coefficients -> session-basis coefficients."""
        if self._transform is None:
            return X
        W = self._transform
        if X.ndim == 2:
            return X @ W.T / self._basis.size
        return np.einsum("nmk,jm->njk", X, W) / self._basis.size

    def _finalise_info(self, info: dict) -> dict:
        info["basis"] = self._basis.name
        if self._transform is not None:
            name = "opm-transformed" if self._method is None else self._method.name
            info["method"] = f"{name}[{self._basis.name}]"
        if self._mor_info:
            info.setdefault("mor", dict(self._mor_info))
        return info

    # ------------------------------------------------------------------
    # reduction plumbing
    # ------------------------------------------------------------------
    @property
    def reduction(self):
        """The bound :class:`~repro.engine.reduction.ReducedModel`
        (``None`` when the session solves the full model)."""
        return self._reduction

    def _full_plan_lazy(self):
        """Full-model plan, built on first fallback (reduced sessions)."""
        if self._full_plan is None:
            self._full_plan = self._make_plan(self._system)
        return self._full_plan

    def _residual_operator(self) -> dict:
        """The plan's operational-matrix data for the full-order
        residual check (shared by the reduced and full plans: it
        depends only on the basis/grid)."""
        plan = self._plan
        if getattr(plan, "D", None) is not None:
            return {"D": plan.D}
        if getattr(plan, "F", None) is not None:
            return {"F": plan.F}
        return {"coeffs": plan.coeffs}

    def _calibrate_run_residual(self) -> float:
        """Bind-time drift-guard reference: the full-order equation
        residual of the reduced model on a unit-step run.

        The bind certificate (transfer bound <= rtol) vouches for this
        reference; a later run whose residual stays within
        ``MOR_RESIDUAL_MARGIN`` of it is operating in the certified
        subspace, while a spike above the margin means the input
        drifted outside it and the run falls back to the full model.
        """
        Ue = self._encode_inputs(self.project(1.0))
        R_full = _system_rhs(self._system, Ue, self._full_offset_cols)
        Z = self._plan.solve(self._plan.right_hand_side(Ue))
        EV, AV = self._reduction.projected_pencil
        return equation_residual(EV, AV, Z, R_full, **self._residual_operator())

    def _lift_certified(self, Z: np.ndarray, R_full: np.ndarray):
        """Lift reduced coefficients, check the per-run drift guard,
        and fall back to the (lazily built) full plan on violation.

        Returns ``(X, mor_info)`` with ``X`` in solver-basis
        coordinates including the ``x0`` columns.
        """
        model = self._reduction
        EV, AV = model.projected_pencil
        residual = equation_residual(EV, AV, Z, R_full, **self._residual_operator())
        mor = dict(self._mor_info)
        mor["run_residual"] = residual
        guard = max(self._mor_rtol, MOR_RESIDUAL_MARGIN * self._mor_residual_scale)
        if residual > guard:
            mor["fallback"] = True
            return self._full_plan_lazy().solve(R_full), mor
        mor["fallback"] = False
        return _add_columns(model.lift(Z), self._x0_lift_cols), mor

    def _solve_encoded(self, Ue: np.ndarray):
        """Solver-basis solve of encoded inputs ``Ue``: the reduced
        certified path when a reduction is bound, the plan solve
        otherwise.  Returns ``(X_solver, mor_info_or_None)``."""
        if self._reduction is None:
            return self._plan.solve(self._plan.right_hand_side(Ue)), None
        R_full = _system_rhs(self._system, Ue, self._full_offset_cols)
        Z = self._plan.solve(self._plan.right_hand_side(Ue))
        return self._lift_certified(Z, R_full)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def run(self, u: InputLike | None = None) -> SimulationResult:
        """Simulate one input; warm sessions pay only projection + sweep.

        ``u=None`` uses the session's bound input (netlist sessions
        bind the deck's source waveforms; see :meth:`bind_input`).

        Returns a :class:`~repro.core.result.SimulationResult` whose
        ``info`` records the method, factorisation count, backend, and
        whether the pencil cache was already warm.
        """
        u = self._resolve_input(u)
        with self._lock:
            warm = self.is_warm
            start = time.perf_counter()
            U = self.project(u)
            X_solver, mor = self._solve_encoded(self._encode_inputs(U))
            X = self._decode_states(X_solver)
            wall = time.perf_counter() - start
            self._runs += 1
            info = self._finalise_info(self._plan.info())
            info["warm"] = warm
            if mor is not None:
                info["mor"] = mor
        return SimulationResult(
            self._basis, X, self._system, U, wall_time=wall, info=info
        )

    def sweep(
        self,
        inputs: Iterable[InputLike],
        *,
        jobs: int | None = None,
        parallel: str = "process",
        min_columns: int | None = None,
    ) -> SweepResult:
        """Simulate many inputs in one batched multi-RHS column sweep.

        All inputs are projected, stacked, and solved together: every
        column step performs a single multi-RHS substitution for the
        whole batch (one ``lu_solve`` per column for *all* inputs),
        instead of ``k`` separate sweeps.

        Parameters
        ----------
        inputs:
            Iterable of input specifications (each anything
            :meth:`run` accepts).
        jobs:
            ``None`` (default) solves the whole batch in-process.  An
            integer ``>= 2`` shards the batch across that many workers
            through a :class:`~repro.engine.executor.ParallelExecutor`
            once it has at least ``min_columns`` inputs (default
            :data:`PARALLEL_SWEEP_MIN_COLUMNS`) -- each worker
            factorises the pencil once and sweeps its column shard;
            the merged result is bit-identical to the serial batch.
        parallel:
            Executor backend for the sharded path: ``'process'``
            (default), ``'thread'``, or ``'serial'``.
        min_columns:
            Override the sharding threshold (mainly for tests).

        Returns
        -------
        SweepResult
            Stacked results; index it for per-input
            :class:`~repro.core.result.SimulationResult` objects.
        """
        inputs = list(inputs)
        if not inputs:
            raise SolverError("sweep requires at least one input")
        threshold = PARALLEL_SWEEP_MIN_COLUMNS if min_columns is None else min_columns
        # zoo-method sessions stay on the in-process batched sweep:
        # executor workers rebuild sessions from _executor_options,
        # which deliberately excludes method= (see run_ensemble)
        if (
            jobs is not None
            and int(jobs) > 1
            and self._method is None
            and len(inputs) >= threshold
        ):
            return self._sweep_sharded(inputs, int(jobs), parallel)
        with self._lock:
            warm = self.is_warm
            start = time.perf_counter()
            U = np.stack([self.project(u) for u in inputs])  # (k, p, m)
            X_solver, mor = self._solve_encoded(self._encode_inputs(U))
            X = self._decode_states(X_solver)  # (n, m, k)
            wall = time.perf_counter() - start
            self._runs += 1
            info = self._finalise_info(self._plan.info())
            info["warm"] = warm
            info["batch"] = len(inputs)
            if mor is not None:
                info["mor"] = mor
        return SweepResult(
            self._basis,
            np.moveaxis(X, 2, 0),
            self._system,
            U,
            wall_time=wall,
            info=info,
        )

    def _sweep_sharded(self, inputs: list, jobs: int, parallel: str) -> SweepResult:
        """Shard a large multi-RHS batch across executor workers.

        The session's system and settings are shipped to ``jobs``
        workers; every worker factorises the pencil once and sweeps a
        contiguous column shard.  The task plan depends only on
        ``jobs``, so the merged coefficients are bit-identical to the
        serial batch.
        """
        from .executor import Ensemble, EnsembleMember, ParallelExecutor

        start = time.perf_counter()
        members = [EnsembleMember(system=self._system, u=u) for u in inputs]
        executor = ParallelExecutor(parallel, jobs=jobs)
        result = executor.run(
            Ensemble(members), self._basis, **self._executor_options
        )
        wall = time.perf_counter() - start
        self._runs += 1
        info = self._finalise_info(self._plan.info())
        info["warm"] = self.is_warm
        info["batch"] = len(inputs)
        info["jobs"] = jobs
        info["parallel"] = parallel
        info["n_tasks"] = result.info["n_tasks"]
        info["factorisations"] = result.info["factorisations"]
        U = result.input_coefficients
        return SweepResult(
            self._basis,
            result.coefficients,
            self._system,
            U,
            wall_time=wall,
            info=info,
        )

    def run_ensemble(
        self,
        ensemble,
        *,
        jobs: int | None = None,
        parallel: str = "process",
        u: InputLike | None = None,
    ):
        """Execute a circuit ensemble on this session's grid and basis.

        The session supplies the solve configuration (grid, basis,
        dense/sparse backend mode, fractional-history settings); the
        ensemble supplies the per-member systems and inputs.  Work is
        sharded across ``jobs`` workers through a
        :class:`~repro.engine.executor.ParallelExecutor`, grouping
        members by pencil fingerprint so each distinct configuration is
        factorised exactly once.

        Parameters
        ----------
        ensemble:
            An :class:`~repro.engine.executor.Ensemble` (see
            :meth:`Ensemble.variations
            <repro.engine.executor.Ensemble.variations>`) or any
            iterable of ``(system, u)`` pairs.
        jobs:
            Worker count (default: the machine's usable CPU count).
        parallel:
            ``'process'`` (default), ``'thread'``, or ``'serial'``.
        u:
            Default input for members that carry none (``u=None``
            members of explicit ensembles).

        Returns
        -------
        EnsembleResult
            Member-ordered results; index for per-member
            :class:`~repro.core.result.SimulationResult` objects.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.core import DescriptorSystem
        >>> from repro.engine.executor import Ensemble
        >>> fast = DescriptorSystem([[1.0]], [[-2.0]], [[1.0]])
        >>> slow = DescriptorSystem([[1.0]], [[-0.5]], [[1.0]])
        >>> sim = Simulator(fast, (5.0, 100))
        >>> res = sim.run_ensemble(Ensemble([(fast, 1.0), (slow, 1.0)]),
        ...                        parallel="serial")
        >>> res.n_members
        2
        """
        if self._method is not None:
            raise SolverError(
                f"run_ensemble() is not supported with method="
                f"{self._method.name!r}: executor workers rebuild native "
                "sessions; use sweep() or per-member run() calls"
            )
        from .executor import ParallelExecutor

        executor = ParallelExecutor(parallel, jobs=jobs)
        return executor.run(ensemble, self._basis, u=u, **self._executor_options)

    def march(self, u, t_end: float, *, events=()) -> MarchingResult:
        """Windowed time-marching over ``[0, t_end]`` on this session.

        The session's horizon *is* the window: ``[0, t_end]`` is split
        into ``t_end / window`` consecutive windows of ``m`` basis terms
        each, all solved on the session's cached operators (one
        factorisation per circuit configuration for the entire march).
        What is carried across window boundaries depends on the basis:

        * **block pulse / Walsh / Haar** -- the flux/charge vector
          ``E x`` for classical systems, the full GL/OPM memory tail
          for fractional ones; the stitched trajectory is
          bit-equivalent to a single giant solve;
        * **spectral (Chebyshev/Legendre)** -- hybrid-function
          marching in the Damarla-Kundu sense: each window is a fresh
          spectral expansion, the terminal state (classical) or the
          Riemann-Liouville memory of all previous windows via cached
          :meth:`~repro.engine.bundle.OperatorBundle.history_matrix`
          operators (fractional) enters as window forcing.

        Parameters
        ----------
        u:
            Input over the whole horizon: a callable in global time, a
            scalar, a ``(p, K * m)`` coefficient array, or an iterable
            streaming one chunk per window (each chunk anything
            :meth:`run` accepts, in window-local time).
        t_end:
            Horizon; must be a whole multiple of the session window.
        events:
            :class:`~repro.engine.marching.Event` objects applied at
            window boundaries: input swaps, load-step scalings, and
            pencil re-stamps (switch closures).  Re-stamped pencils are
            cached, so revisiting a configuration re-factorises
            nothing.  (Fractional spectral marches support input
            events only.)

        Returns
        -------
        MarchingResult
            Stitched per-window results with global-time sampling.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.core import DescriptorSystem
        >>> sim = Simulator(DescriptorSystem([[1.0]], [[-1.0]], [[1.0]]), (1.0, 50))
        >>> long = sim.march(1.0, 10.0)        # 10 windows, one factorisation
        >>> long.n_windows, sim.factorisations
        (10, 1)
        >>> bool(abs(long.states([9.9])[0, 0] - 1.0) < 1e-3)
        True
        """
        if self._method is not None:
            raise SolverError(
                f"march() is not supported with method={self._method.name!r}: "
                "cross-window fractional memory is defined for the native "
                "OPM route only; size the session horizon to t_end instead"
            )
        with self._lock:
            result = marching.march(self, self._resolve_input(u), t_end, events=events)
            if self._reduction is not None:
                result = self._lift_marching(result)
        return result

    def _lift_marching(self, result: MarchingResult) -> MarchingResult:
        """Lift reduced-coordinate march windows back to full order.

        Windowed marches carry their history in reduced coordinates
        (that is the point: each window sweep touches only the ``r``
        reduced states), so lifting happens once per window here.
        Marching relies on the bind-time certificate -- the per-run
        residual estimate is only evaluated by ``run``/``sweep``.
        """
        model = self._reduction
        x0 = self._system.x0
        ones = project_input(1.0, self._basis, 1)[0]
        mor = dict(self._mor_info)
        windows = []
        for res in result.windows:
            X = model.V @ res.coefficients
            if x0 is not None:
                X = X + np.outer(x0, ones)
            info = dict(res.info)
            info["mor"] = mor
            windows.append(
                SimulationResult(
                    res.basis,
                    X,
                    self._system,
                    res.input_coefficients,
                    wall_time=res.wall_time,
                    info=info,
                )
            )
        info = dict(result.info)
        info["mor"] = mor
        return MarchingResult(
            windows,
            result.window_length,
            wall_time=result.wall_time,
            info=info,
        )

"""Windowed time-marching: restartable long-horizon OPM simulation.

The paper's OPM solves one fixed interval with ``m`` block pulses, so a
long horizon forces a huge ``m`` (the fractional history alone is
``O(n m^2)``) and nothing can change mid-run.  This module marches a
sequence of short windows on one cached
:class:`~repro.engine.session.Simulator` session instead -- every
window shares the session's grid, basis, coefficients, and pencil bank,
so the whole march performs **one factorisation per circuit
configuration** -- and carries the state across window boundaries:

* **Classical systems** (``alpha = 1``): the carried quantity is the
  flux/charge vector ``w = E x(t)`` (well-defined even for singular
  DAE ``E``), injected into the next window as the boundary forcing
  ``(2/h) (-1)^j w`` -- the image of the initial condition under the
  block-pulse differentiation operator.  The march is then
  *algebraically identical* to one giant single-window solve: the
  stitched coefficients match to machine precision.

* **Fractional systems** (``alpha != 1``): the memory tail of all
  previous windows is evaluated by
  :class:`~repro.fractional.history.HistoryTail` -- the same GL-style
  convolution the Grünwald-Letnikov baseline pays per step, batched
  into a few GEMMs per window -- and enters the current window as an
  extra forcing term.  Again exactly equivalent to the single-window
  solve, but the per-window working set stays ``O(n m + m^2)``.

Windows also admit **events** at window boundaries: swap the input
waveform, scale it, or re-stamp the MNA pencil (switch closures, load
steps).  Re-stamped pencils are cached per configuration in the
session's :class:`~repro.engine.backends.PencilBank`, so toggling back
to a previous configuration re-factorises nothing.

Sessions bound to non-block-pulse bases march too:

* **Walsh/Haar** sessions march in block-pulse coordinates (the exact
  change of basis) and transform each window at the boundary -- same
  guarantees as above.
* **Spectral** sessions (Chebyshev/Legendre) perform *hybrid-function
  marching* in the sense of Damarla & Kundu's orthogonal hybrid
  functions: each window is a fresh spectral expansion on the shared
  cached Kronecker operator; classical systems carry the terminal
  state (exact polynomial evaluation at the window edge), fractional
  systems carry the Riemann-Liouville memory of every previous window
  through the cached lag operators of
  :meth:`~repro.engine.bundle.OperatorBundle.history_matrix` -- a few
  GEMMs per window instead of a growing global solve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Union

import numpy as np

from ..core.lti import DescriptorSystem, FractionalDescriptorSystem
from ..core.result import (
    MarchingResult,
    SimulationResult,
    terminal_state_estimate,
)
from ..errors import ModelError, SolverError
from ..fractional.history import HistoryTail
from ..fractional.soe import (
    SoeTail,
    fit_continuous_kernel,
    fit_discrete_kernel,
    require_certified,
)
from . import assembly, kernels
from .backends import pencil_fingerprint, select_backend
from .inputs import normalise_input_callable, project_input

__all__ = ["Event", "march"]

#: Relative tolerance for snapping horizons / event times to window
#: boundaries.
_ALIGN_RTOL = 1e-9


@dataclass
class Event:
    """A mid-run change applied at a window boundary.

    Parameters
    ----------
    t:
        Event time; must coincide with a window boundary (multiple of
        the session's window length) up to round-off.
    u:
        New input specification (callable in *global* time, or a
        scalar) used from ``t`` onward.  ``None`` keeps the current
        input.
    scale:
        Multiplier applied to the *current* input from ``t`` onward
        (load step).  Composes with ``u`` (the new input is scaled).
    system:
        Replacement system whose ``E``/``A``/``B`` re-stamp the pencil
        from ``t`` onward (switch closure).  Must match the bound
        system's state/input/output dimensions and fractional order.
        ``E``/``A``/``B`` given individually override the corresponding
        matrix of the current system instead.
    E, A, B:
        Individual matrix overrides (used when ``system`` is ``None``).
    label:
        Optional name recorded in the result's ``info['events']``.
    """

    t: float
    u: Union[Callable, float, None] = None
    scale: float | None = None
    system: DescriptorSystem | None = None
    E: object = None
    A: object = None
    B: object = None
    label: str | None = None

    changes_pencil: bool = field(init=False, repr=False, default=False)

    def __post_init__(self) -> None:
        self.t = float(self.t)
        if self.t < 0.0:
            raise SolverError(f"event time must be >= 0, got {self.t}")
        self.changes_pencil = (
            self.system is not None
            or self.E is not None
            or self.A is not None
            or self.B is not None
        )
        if (
            self.u is None
            and self.scale is None
            and not self.changes_pencil
        ):
            raise SolverError(
                "event changes nothing: provide u, scale, system, or E/A/B"
            )

    def resolve_system(self, current: DescriptorSystem) -> DescriptorSystem:
        """The system active after this event (dimension-checked)."""
        if not self.changes_pencil:
            return current
        if self.system is not None:
            new = self.system
        else:
            E = current.E if self.E is None else self.E
            A = current.A if self.A is None else self.A
            B = current.B if self.B is None else self.B
            if isinstance(current, FractionalDescriptorSystem):
                new = FractionalDescriptorSystem(
                    current.alpha, E, A, B, C=current.C, D=current.D
                )
            else:
                new = DescriptorSystem(E, A, B, C=current.C, D=current.D)
        if not isinstance(new, DescriptorSystem):
            raise ModelError(
                f"event system must be a DescriptorSystem, got {type(new).__name__}"
            )
        if (
            new.n_states != current.n_states
            or new.n_inputs != current.n_inputs
            or new.n_outputs != current.n_outputs
        ):
            raise ModelError(
                "event system must preserve the model dimensions "
                f"(n={current.n_states}, p={current.n_inputs}, "
                f"q={current.n_outputs}), got (n={new.n_states}, "
                f"p={new.n_inputs}, q={new.n_outputs})"
            )
        if new.alpha != current.alpha:
            raise ModelError(
                f"event system must keep the fractional order alpha="
                f"{current.alpha:g}, got {new.alpha:g}"
            )
        return new


def _boundary_index(t: float, window: float, horizon: float, what: str) -> int:
    """Snap a time to its window-boundary index, or raise."""
    k = int(round(t / window))
    if abs(t - k * window) > _ALIGN_RTOL * max(horizon, window):
        raise SolverError(
            f"{what} t={t:g} does not fall on a window boundary "
            f"(window length {window:g}); align it to a multiple of the "
            "session's grid horizon or choose a different window length"
        )
    return k


class _WindowInputs:
    """Per-window input projection: global callables, streams, arrays, scalars."""

    def __init__(self, u, basis, n_inputs: int, n_windows: int) -> None:
        self._basis = basis
        self._p = n_inputs
        self._m = basis.size
        self._window = basis.t_end
        self._scale = 1.0
        self._stream: Iterator | None = None
        self._callable: Callable | None = None
        self._chunks: np.ndarray | None = None

        if callable(u):
            self._callable = normalise_input_callable(u, n_inputs)
        elif np.isscalar(u):
            self._callable = normalise_input_callable(
                lambda t, _v=float(u): np.full_like(t, _v), n_inputs
            )
        elif isinstance(u, np.ndarray):
            total = n_windows * self._m
            arr = np.asarray(u, dtype=float)
            if arr.ndim == 1:
                arr = arr.reshape(1, -1)
            if arr.shape != (n_inputs, total):
                raise ModelError(
                    f"marching input coefficients must have shape "
                    f"({n_inputs}, {total}) = (p, K * m), got {arr.shape}"
                )
            self._chunks = arr
        elif hasattr(u, "__next__") or hasattr(u, "__iter__"):
            self._stream = iter(u)
        else:
            raise ModelError(
                "march input must be a callable, scalar, (p, K*m) coefficient "
                f"array, or an iterable of per-window chunks, got {type(u).__name__}"
            )

    def set_input(self, u) -> None:
        """Replace the input source from the current window onward."""
        if callable(u):
            self._callable = normalise_input_callable(u, self._p)
        elif np.isscalar(u):
            self._callable = normalise_input_callable(
                lambda t, _v=float(u): np.full_like(t, _v), self._p
            )
        else:
            raise ModelError(
                "event input must be a callable or scalar, "
                f"got {type(u).__name__}"
            )
        # an explicit new input supersedes pre-recorded chunks / streams
        self._chunks = None
        self._stream = None

    def apply_scale(self, scale: float) -> None:
        self._scale *= float(scale)

    def window(self, k: int) -> np.ndarray:
        """Projected input coefficients ``(p, m)`` of window ``k``."""
        if self._chunks is not None:
            U = self._chunks[:, k * self._m : (k + 1) * self._m]
        elif self._stream is not None:
            try:
                chunk = next(self._stream)
            except StopIteration:
                raise SolverError(
                    f"input stream exhausted at window {k}: the stream must "
                    "yield one chunk per window"
                ) from None
            U = project_input(chunk, self._basis, self._p)
        else:
            offset = k * self._window
            U = project_input(
                lambda t, _f=self._callable, _o=offset: _f(t + _o),
                self._basis,
                self._p,
            )
        return self._scale * U if self._scale != 1.0 else U


def _bucket_events(events, window: float, t_end: float, n_windows: int) -> dict:
    """Group events by window index, validating boundary alignment."""
    by_window: dict[int, list[Event]] = {}
    for event in sorted(events, key=lambda e: e.t):
        k = _boundary_index(event.t, window, t_end, "event")
        if not 0 < k < n_windows:
            raise SolverError(
                f"event t={event.t:g} must fall strictly inside (0, {t_end:g})"
            )
        by_window.setdefault(k, []).append(event)
    return by_window


def _apply_window_events(
    events,
    k: int,
    window: float,
    system,
    bank,
    inputs,
    applied_events: list,
    make_backend,
    on_restamp=None,
) -> tuple:
    """Apply one window's events (shared by both marching flavours).

    ``make_backend(new_system)`` builds the restamp backend (plain
    pencil for the triangular march, Kronecker operator for the
    spectral one); ``on_restamp(event, old_system, new_system)`` is an
    optional hook for flavour-specific carried-state adjustments.
    Returns ``(active system, number of restamps applied)``.
    """
    restamps = 0
    for event in events:
        if event.changes_pencil:
            new_system = event.resolve_system(system)
            before = bank.stamps
            bank.restamp(make_backend(new_system))
            restamps += 1
            if on_restamp is not None:
                on_restamp(event, system, new_system)
            system = new_system
            applied_events.append(
                {
                    "t": k * window,
                    "label": event.label,
                    "restamp": True,
                    "new_stamp": bank.stamps > before,
                }
            )
        if event.u is not None:
            inputs.set_input(event.u)
        if event.scale is not None:
            inputs.apply_scale(event.scale)
        if not event.changes_pencil:
            applied_events.append(
                {"t": k * window, "label": event.label, "restamp": False}
            )
    return system, restamps


def march(sim, u, t_end: float, *, events=()) -> MarchingResult:
    """Drive a :class:`~repro.engine.session.Simulator` session over
    ``[0, t_end]`` as consecutive windows of the session's basis span.

    This is the implementation behind ``Simulator.march``; see there
    for the user-facing contract.  Dispatches on the session's plan:
    triangular (block-pulse / Walsh / Haar) sessions use the exact
    state-carrying march, spectral sessions the hybrid-function march.
    """
    plan = sim._plan
    if not hasattr(plan, "bank") or not isinstance(plan.system, DescriptorSystem):
        raise SolverError(
            "march supports (fractional) descriptor systems only; convert "
            "multi-term models with to_first_order() first"
        )
    if not sim._bundle.supports_march:
        raise SolverError(
            f"the {sim._basis.name} basis spans an infinite horizon and "
            "cannot be windowed; use run() or a finite-horizon basis"
        )
    if getattr(sim, "_reduction", None) is not None and any(
        e.changes_pencil for e in events
    ):
        raise SolverError(
            "pencil events invalidate the session's reduction basis "
            "(the Krylov subspace is built for one pencil); march the "
            "full model (reduce=None) for switching circuits"
        )
    if not getattr(plan.bank.backend, "is_host", True):
        raise SolverError(
            "march's window state carry is host-only; use "
            "backend='auto'/'dense'/'sparse' (device array-API backends "
            "support run() and sweep())"
        )
    if plan.kind == "spectral":
        return _march_spectral(sim, u, t_end, events)
    return _march_triangular(sim, u, t_end, events)


def _resolve_tail(sim, full_coeffs: np.ndarray, m: int, n_windows: int):
    """Cross-window memory carrier for the triangular march.

    ``memory='exact'`` sessions (the default) keep today's
    :class:`HistoryTail` bit-for-bit.  ``memory='soe'`` sessions fit a
    sum-of-exponentials over the cross-window lag range
    ``[m + 1, K m - 1]`` (the current window's own history stays inside
    :func:`kernels.sweep_toeplitz` either way); the fit is *gated* on
    its exact certificate -- a miss falls back to the exact tail and
    records why in the march's ``info['memory']``.
    """
    plan_mem = getattr(sim, "_memory_plan", None)
    if plan_mem is None:
        return HistoryTail(full_coeffs, block_columns=m), {"mode": "exact"}
    if n_windows * m - 1 < m + 1:
        # single window (or degenerate m): no cross-window memory exists
        return (
            HistoryTail(full_coeffs, block_columns=m),
            {"mode": "exact", "reason": "single-window"},
        )
    fit = fit_discrete_kernel(full_coeffs, m + 1, n_windows * m - 1, plan_mem)
    memory_info = fit.info()
    if require_certified(fit, plan_mem, "windowed-march"):
        memory_info["fallback"] = False
        return SoeTail(full_coeffs, fit), memory_info
    memory_info.update(mode="exact", fallback=True)
    return HistoryTail(full_coeffs, block_columns=m), memory_info


def _march_triangular(sim, u, t_end: float, events=()) -> MarchingResult:
    """State-carrying march on the block-pulse (or transformed) plan."""
    plan = sim._plan
    basis = sim._solve_basis
    grid = basis.grid
    if plan.coeffs is None:
        raise SolverError(
            "march requires a uniform window grid (the adaptive operator is "
            "not Toeplitz, so windows cannot share one pencil bank)"
        )
    t_end = float(t_end)
    if t_end <= 0.0:
        raise SolverError(f"t_end must be positive, got {t_end}")
    window = grid.t_end
    m, h = grid.m, grid.h
    n_windows = _boundary_index(t_end, window, t_end, "t_end")
    if n_windows < 1:
        raise SolverError(
            f"t_end={t_end:g} is shorter than the session window {window:g}"
        )

    by_window = _bucket_events(events, window, t_end, n_windows)

    system = plan.system
    bank = plan.bank
    backend_mode = getattr(plan, "backend_mode", "auto")
    alpha = system.alpha
    first_order = alpha == 1.0
    coeffs = plan.coeffs
    sigma = float(coeffs[0])
    n = system.n_states

    # inputs are interpreted in the SESSION basis (exactly like run());
    # transformed sessions encode each window into block-pulse
    # coordinates right after projection
    inputs = _WindowInputs(u, sim._basis, system.n_inputs, n_windows)

    start = time.perf_counter()
    applied_events: list[dict] = []
    restamps = 0

    x0 = system.x0  # the global t=0 initial state, fixed across events
    if first_order:
        tail = None
        memory_info = None
        signs = (-1.0) ** np.arange(m)
        # carried flux/charge vector w = E x(t) -- exact for DAEs too
        w = np.zeros(n) if x0 is None else np.asarray(
            bank.apply_E(x0)
        ).reshape(-1)
        x0_offset = None
        # reduced solve systems march in shifted coordinates with a
        # constant forcing g = V^T A x0 (x0 is None there, so the two
        # mechanisms never overlap); full systems encode their IC in w
        march_offset = system.shifted_input_offset() if x0 is None else None
    else:
        # fractional: march in the zero-IC shifted variable z = x - x0
        # (Caputo convention; see DescriptorSystem.shifted_input_offset),
        # carrying the GL/OPM memory of all previous windows
        full_coeffs = assembly.toeplitz_coefficients(alpha, n_windows * m, h)
        tail, memory_info = _resolve_tail(sim, full_coeffs, m, n_windows)
        w = None
        signs = None
        x0_offset = plan._offset  # A x0, or None

    windows: list[SimulationResult] = []
    prev_X: np.ndarray | None = None
    base_stamp = bank.stamp  # restore after eventful excursions

    def on_restamp(event, old_system, new_system):
        # carried-state adjustments specific to the triangular march
        nonlocal w, x0_offset
        if first_order and pencil_fingerprint(new_system.E) != pencil_fingerprint(
            old_system.E
        ):
            # w = E x is discontinuous across an E change; rebuild it
            # from the O(h^2) terminal-state estimate of the previous
            # window (exactness is only guaranteed for events that
            # keep E)
            x_est = (
                terminal_state_estimate(prev_X)
                if prev_X is not None
                else np.zeros(n)
            )
            w = np.asarray(bank.apply_E(x_est)).reshape(-1)
        if not first_order and x0_offset is not None:
            x0_offset = np.asarray(new_system.A @ x0).reshape(-1)

    try:
        for k in range(n_windows):
            system, applied = _apply_window_events(
                by_window.get(k, ()),
                k,
                window,
                system,
                bank,
                inputs,
                applied_events,
                lambda s: select_backend(s.E, s.A, mode=backend_mode),
                on_restamp,
            )
            restamps += applied

            U = sim._encode_inputs(inputs.window(k))
            R = system.B @ U
            if first_order:
                if march_offset is not None:
                    R = R + march_offset[:, None]
                if np.any(w):
                    R = R + (2.0 / h) * w[:, None] * signs[None, :]
                X = kernels.sweep_toeplitz(bank, R, coeffs, alternating_tail=True)
                w = w + h * (system.A @ X.sum(axis=1) + system.B @ U.sum(axis=1))
                if march_offset is not None:
                    # the constant forcing integrates to (window length) * g
                    w = w + (h * m) * march_offset
            else:
                if x0_offset is not None:
                    R = R + x0_offset[:, None]
                H = tail.tail(m)
                if H is not None:
                    R = R - bank.apply_E(H)
                X = kernels.sweep_toeplitz(bank, R, coeffs, history=plan.history)
                tail.append(X)
                if x0 is not None:
                    X = X + x0[:, None]
            prev_X = X

            info = plan.info()
            info.update(window_index=k, t_offset=k * window)
            windows.append(
                SimulationResult(basis, X, system, U, wall_time=None, info=info)
            )

    finally:
        # an eventful march must not leave the session bound to the
        # event pencil: later run()/sweep()/march() calls solve against
        # plan.system, whose pencil is the base stamp
        bank.use(base_stamp)

    if sim._transform is not None:
        windows = [_transformed_window(sim, res) for res in windows]

    wall = time.perf_counter() - start
    info = plan.info()
    info.update(
        method="opm-windowed",
        basis=sim._basis.name,
        windows=n_windows,
        window_m=m,
        window_length=window,
        events=applied_events,
        restamps=restamps,
        stamps=bank.stamps,
    )
    if memory_info is not None:
        info["memory"] = memory_info
    sim._runs += 1
    return MarchingResult(windows, window, wall_time=wall, info=info)


def _transformed_window(sim, res: SimulationResult) -> SimulationResult:
    """Re-express a block-pulse window in the session's Walsh/Haar basis."""
    basis = sim._basis
    info = dict(res.info)
    info["method"] = f"opm-windowed-transformed[{basis.name}]"
    return SimulationResult(
        basis,
        basis.from_block_pulse_coefficients(res.coefficients),
        res.system,
        basis.from_block_pulse_coefficients(res.input_coefficients),
        wall_time=res.wall_time,
        info=info,
    )


def _march_spectral(sim, u, t_end: float, events=()) -> MarchingResult:
    """Hybrid-function marching on a spectral session.

    Every window is a fresh spectral expansion solved on the session's
    cached Kronecker operator.  Classical systems carry the terminal
    state across boundaries (exact polynomial evaluation at the window
    edge); fractional systems carry the Riemann-Liouville memory of all
    previous windows through the cached lag operators
    ``H_l = bundle.history_matrix(alpha, l)``:

    .. math::

        E Z_k - A Z_k F = R_k F + \\sum_{l \\ge 1}
            (A Z_{k-l} + R_{k-l}) H_l,

    which is the operational-matrix form of splitting ``I^alpha`` at
    the window boundaries (the Damarla-Kundu hybrid construction).
    Unlike the block-pulse march, windows are *independent truncations*
    -- accuracy is spectral in the window order ``m`` rather than
    bit-equal to a giant single solve.
    """
    plan = sim._plan
    bundle = plan.bundle
    basis = bundle.basis
    window = basis.t_end
    m = basis.size
    t_end = float(t_end)
    if t_end <= 0.0:
        raise SolverError(f"t_end must be positive, got {t_end}")
    n_windows = _boundary_index(t_end, window, t_end, "t_end")
    if n_windows < 1:
        raise SolverError(
            f"t_end={t_end:g} is shorter than the session window {window:g}"
        )
    by_window = _bucket_events(events, window, t_end, n_windows)

    system = plan.system
    bank = plan.bank
    alpha = system.alpha
    first_order = alpha == 1.0
    n = system.n_states
    ones = bundle.ones_coefficients()
    F = plan.F

    memory_info = None
    if not first_order:
        for evts in by_window.values():
            if any(e.changes_pencil for e in evts):
                raise SolverError(
                    "fractional spectral marches support input events only: "
                    "the memory operators assume one pencil over the whole "
                    "history (use a block-pulse session for switching "
                    "fractional circuits)"
                )
        history_sources: list[np.ndarray] = []  # A Z_j + R_j per window
        soe_ops, memory_info = _spectral_soe_operators(
            sim, bundle, alpha, n_windows
        )
        if soe_ops is not None:
            soe_a, soe_b, soe_c, soe_mu, soe_mu2 = soe_ops
            H1 = bundle.history_matrix(alpha, 1)  # singular lag: exact
            T = np.zeros((n, soe_mu.size))  # mode states sum mu^l src a
            prev_src: np.ndarray | None = None
        x0 = system.x0
        offset = system.shifted_input_offset()  # A x0, or None
        offset_cols = None if offset is None else np.outer(offset, ones)
        x0_cols = None if x0 is None else np.outer(x0, ones)
    else:
        terminal = bundle.terminal_vector()
        w0 = np.zeros(n) if system.x0 is None else np.asarray(system.x0, float).copy()
        # reduced solve systems: constant shifted-coordinate forcing
        march_offset = (
            system.shifted_input_offset() if system.x0 is None else None
        )
        offset_cols_fo = (
            None if march_offset is None else np.outer(march_offset, ones)
        )

    inputs = _WindowInputs(u, basis, system.n_inputs, n_windows)

    start = time.perf_counter()
    applied_events: list[dict] = []
    restamps = 0
    windows: list[SimulationResult] = []
    base_stamp = bank.stamp

    try:
        for k in range(n_windows):
            system, applied = _apply_window_events(
                by_window.get(k, ()),
                k,
                window,
                system,
                bank,
                inputs,
                applied_events,
                plan.kron_backend,
            )
            restamps += applied

            U = inputs.window(k)
            R = system.B @ U
            if first_order:
                # window variable v = x - w0, forced by B u + A w0
                if offset_cols_fo is not None:
                    R = R + offset_cols_fo
                if np.any(w0):
                    R = R + np.outer(np.asarray(system.A @ w0).reshape(-1), ones)
                V = plan.kron_solve(R @ F)
                X = V + np.outer(w0, ones) if np.any(w0) else V
                w0 = X @ terminal
            else:
                if offset_cols is not None:
                    R = R + offset_cols
                S = R @ F
                if soe_ops is not None:
                    # adjacent window exact (the RL kernel is singular
                    # there); all older windows through the rank-one
                    # mode states: sum_l>=2 src_{k-l} H_l ~ (T c) b
                    if prev_src is not None:
                        S = S + prev_src @ H1
                    if k >= 2:
                        S = S + (T * soe_c[None, :]) @ soe_b
                else:
                    for lag in range(1, k + 1):
                        S = S + history_sources[k - lag] @ bundle.history_matrix(
                            alpha, lag
                        )
                Z = plan.kron_solve(S)
                src = np.asarray(system.A @ Z) + R
                if soe_ops is not None:
                    # T(k+1) = mu T(k) + mu^2 (src_{k-1} @ a): window
                    # k-1 graduates from the exact adjacent slot into
                    # the compressed modes
                    if prev_src is not None:
                        T = T * soe_mu[None, :] + (prev_src @ soe_a) * soe_mu2[
                            None, :
                        ]
                    prev_src = src
                else:
                    history_sources.append(src)
                X = Z + x0_cols if x0_cols is not None else Z
            info = plan.info()
            info.update(window_index=k, t_offset=k * window)
            windows.append(
                SimulationResult(basis, X, system, U, wall_time=None, info=info)
            )
    finally:
        bank.use(base_stamp)

    wall = time.perf_counter() - start
    info = plan.info()
    info.update(
        method=f"opm-spectral-windowed[{basis.name}]",
        basis=basis.name,
        windows=n_windows,
        window_m=m,
        window_length=window,
        events=applied_events,
        restamps=restamps,
        stamps=bank.stamps,
    )
    if memory_info is not None:
        info["memory"] = memory_info
    sim._runs += 1
    return MarchingResult(windows, window, wall_time=wall, info=info)


def _spectral_soe_operators(sim, bundle, alpha: float, n_windows: int):
    """Rank-one compressed memory operators for the spectral march.

    Fits the continuous RL kernel ``t^{alpha-1}/Gamma(alpha)`` on
    ``[W, K W]`` (certified); separability of each exponential mode
    turns every lag operator ``H_l`` (``l >= 2``) into
    ``sum_p c_p mu_p^l a_p b_p^T`` with

    * ``a_p[i] = int_0^W psi_i(sigma) e^{theta_p sigma} dsigma``
      (Gauss-Legendre, same order as the exact ``history_matrix``),
    * ``b_p`` the basis coefficients of ``e^{-theta_p tau}``,
    * ``mu_p = e^{-theta_p W}``.

    Returns ``((a, b, c, mu, mu2), info)`` or ``(None, info)`` when the
    session uses exact memory, the horizon is too short to compress, or
    the fit missed its certificate (recorded fallback).
    """
    plan_mem = getattr(sim, "_memory_plan", None)
    if plan_mem is None:
        return None, {"mode": "exact"}
    if n_windows < 3:
        # lag 1 is exact by construction, so there is nothing to compress
        return None, {"mode": "exact", "reason": "short-horizon"}
    basis = bundle.basis
    if not hasattr(basis, "quadrature_times") or not hasattr(
        basis, "project_values"
    ):
        return None, {"mode": "exact", "reason": "no-quadrature"}
    W = bundle.t_end
    fit = fit_continuous_kernel(alpha, n_windows, W, plan_mem)
    memory_info = fit.info()
    if not require_certified(fit, plan_mem, "spectral-march"):
        memory_info.update(mode="exact", fallback=True)
        return None, memory_info
    memory_info["fallback"] = False
    theta = fit.rates
    c = fit.weights
    m = bundle.size
    ng = max(64, 2 * m)
    nodes, wts = np.polynomial.legendre.leggauss(ng)
    sigma = 0.5 * W * (nodes + 1.0)
    ws = 0.5 * W * wts
    psi = np.asarray(basis.evaluate(sigma), dtype=float)  # (m, ng)
    a = psi @ (ws[:, None] * np.exp(np.outer(sigma, theta)))  # (m, P)
    tau = np.asarray(basis.quadrature_times, dtype=float)
    b = np.asarray(
        basis.project_values(np.exp(-np.outer(theta, tau))), dtype=float
    )  # (P, m)
    mu = np.exp(-theta * W)
    return (a, b, c, mu, mu * mu), memory_info
